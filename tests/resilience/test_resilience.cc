/**
 * @file
 * Integration tests for the cluster resilience layer: drain-boundary
 * checkpoints, fault injection with checkpoint-requeue, retry budgets,
 * transient-stall recovery, and load-driven migration.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/cluster_metrics.hh"
#include "common/logging.hh"

namespace flep
{
namespace
{

class ResilienceTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        suite_ = new BenchmarkSuite();
        artifacts_ = new OfflineArtifacts(
            runOfflinePhase(*suite_, GpuConfig::keplerK40(), 30, 8));
    }

    static void
    TearDownTestSuite()
    {
        delete artifacts_;
        delete suite_;
        artifacts_ = nullptr;
        suite_ = nullptr;
    }

    static ClusterJob
    job(int id, const char *workload, InputClass input,
        Priority priority, Tick arrival, int repeats = 1,
        Tick slo = 0)
    {
        ClusterJob j;
        j.id = id;
        j.workload = workload;
        j.input = input;
        j.priority = priority;
        j.arrivalNs = arrival;
        j.repeats = repeats;
        j.sloNs = slo;
        return j;
    }

    /** Makespan of `cfg` run without any resilience features; used
     *  to aim scripted faults at a mid-run tick. */
    static Tick
    baselineMakespan(ClusterConfig cfg)
    {
        cfg.resilience = ResilienceConfig{};
        const ClusterResult res =
            runCluster(*suite_, *artifacts_, cfg);
        EXPECT_GT(res.makespanNs, 0u);
        return res.makespanNs;
    }

    static FaultEvent
    crashAt(int device, Tick at)
    {
        FaultEvent ev;
        ev.kind = FaultKind::DeviceCrash;
        ev.device = device;
        ev.atNs = at;
        return ev;
    }

    static FaultEvent
    stallAt(int device, Tick at, Tick duration)
    {
        FaultEvent ev;
        ev.kind = FaultKind::TransientStall;
        ev.device = device;
        ev.atNs = at;
        ev.durationNs = duration;
        return ev;
    }

    static void
    expectSameOutcome(const JobOutcome &a, const JobOutcome &b)
    {
        EXPECT_EQ(a.placed, b.placed);
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.device, b.device);
        EXPECT_EQ(a.displacedVictim, b.displacedVictim);
        EXPECT_EQ(a.placeTick, b.placeTick);
        EXPECT_EQ(a.finishTick, b.finishTick);
        EXPECT_EQ(a.preemptions, b.preemptions);
        EXPECT_EQ(a.execNs, b.execNs);
        EXPECT_EQ(a.predictedDemandNs, b.predictedDemandNs);
        EXPECT_EQ(a.restarts, b.restarts);
        EXPECT_EQ(a.migrations, b.migrations);
        EXPECT_EQ(a.lostWorkNs, b.lostWorkNs);
        EXPECT_EQ(a.failedPermanently, b.failedPermanently);
    }

    static BenchmarkSuite *suite_;
    static OfflineArtifacts *artifacts_;
};

BenchmarkSuite *ResilienceTest::suite_ = nullptr;
OfflineArtifacts *ResilienceTest::artifacts_ = nullptr;

TEST_F(ResilienceTest, InertConfigInstallsNothing)
{
    ResilienceConfig rc;
    EXPECT_FALSE(rc.active());
    rc.checkpoints = true;
    EXPECT_TRUE(rc.active());
    rc = ResilienceConfig{};
    rc.faults.push_back(FaultEvent{});
    EXPECT_TRUE(rc.active());
    rc = ResilienceConfig{};
    rc.migration.enabled = true;
    EXPECT_TRUE(rc.active());
}

TEST_F(ResilienceTest, CheckpointingWithoutFaultsIsByteIdentical)
{
    // The determinism contract: capture is purely passive, so a run
    // with checkpointing on (but no fault plan and no migration) must
    // be indistinguishable from a run without the resilience layer —
    // every outcome field, not just aggregates.
    ClusterConfig cfg;
    cfg.devices = 2;
    cfg.deviceCapacity = 2;
    cfg.jobs = {job(0, "VA", InputClass::Small, 0, 0, 2),
                job(1, "MM", InputClass::Small, 1, 1000),
                job(2, "NN", InputClass::Small, 0, 2000, 2),
                job(3, "VA", InputClass::Small, 2, 3000)};

    const ClusterResult plain = runCluster(*suite_, *artifacts_, cfg);
    cfg.resilience.checkpoints = true;
    const ClusterResult chk = runCluster(*suite_, *artifacts_, cfg);

    ASSERT_EQ(plain.outcomes.size(), chk.outcomes.size());
    for (std::size_t i = 0; i < plain.outcomes.size(); ++i)
        expectSameOutcome(plain.outcomes[i], chk.outcomes[i]);
    EXPECT_EQ(plain.makespanNs, chk.makespanNs);
    EXPECT_EQ(plain.placements, chk.placements);
    EXPECT_EQ(plain.preemptivePlacements, chk.preemptivePlacements);
    EXPECT_EQ(plain.devicePreemptions, chk.devicePreemptions);
    EXPECT_EQ(plain.deviceUtilization, chk.deviceUtilization);
    EXPECT_EQ(chk.faultsInjected, 0);
    EXPECT_EQ(chk.restarts, 0);
    EXPECT_EQ(chk.migrations, 0);
    EXPECT_EQ(chk.lostWorkNs, 0u);
}

TEST_F(ResilienceTest, ScriptedCrashRequeuesOntoSurvivor)
{
    ClusterConfig cfg;
    cfg.devices = 2;
    cfg.jobs = {job(0, "VA", InputClass::Small, 0, 0, 2)};
    const Tick mid = baselineMakespan(cfg) / 2;

    cfg.resilience.faults = {crashAt(0, mid)};
    const ClusterResult res = runCluster(*suite_, *artifacts_, cfg);

    ASSERT_EQ(res.outcomes.size(), 1u);
    const JobOutcome &out = res.outcomes[0];
    EXPECT_TRUE(out.completed);
    EXPECT_FALSE(out.failedPermanently);
    EXPECT_EQ(out.restarts, 1);
    EXPECT_EQ(out.device, 1); // FirstFit placed on 0; 0 died
    EXPECT_EQ(res.faultsInjected, 1);
    EXPECT_EQ(res.restarts, 1);
    EXPECT_EQ(res.permanentFailures, 0);
    // The requeued job finishes later than an undisturbed run would.
    EXPECT_GT(out.finishTick, mid);
}

TEST_F(ResilienceTest, MidProgramCheckpointRestoresRemainingRepeats)
{
    // A multi-invocation job crashed mid-program must resume from its
    // checkpoint: completed repeats are not re-run, and the job still
    // finishes all of them.
    ClusterConfig cfg;
    cfg.devices = 2;
    cfg.jobs = {job(0, "VA", InputClass::Small, 0, 0, 4)};
    const Tick mid = (baselineMakespan(cfg) * 6) / 10;

    cfg.resilience.faults = {crashAt(0, mid)};

    Simulation sim(cfg.seed);
    ClusterScheduler cluster(sim, *suite_, *artifacts_, cfg);
    cluster.start();
    sim.run();
    const ClusterResult res = cluster.collect();

    ASSERT_EQ(res.outcomes.size(), 1u);
    EXPECT_TRUE(res.outcomes[0].completed);
    EXPECT_EQ(res.outcomes[0].restarts, 1);

    const JobCheckpoint &cp = cluster.checkpointOf(0);
    EXPECT_TRUE(cp.valid);
    EXPECT_EQ(cp.jobId, 0);
    EXPECT_EQ(cp.completedRepeats, 4); // final state: all repeats in
    EXPECT_EQ(cp.tasksDone, 0);
    EXPECT_EQ(cp.totalTasks,
              suite_->byName("VA")
                  .input(InputClass::Small)
                  .totalTasks);
}

TEST_F(ResilienceTest, ExhaustedRetryBudgetIsPermanentFailure)
{
    ClusterConfig cfg;
    cfg.devices = 1;
    cfg.jobs = {job(0, "VA", InputClass::Small, 0, 0, 1,
                    /*slo=*/1000)};
    const Tick mid = baselineMakespan(cfg) / 2;

    cfg.resilience.faults = {crashAt(0, mid)};
    cfg.resilience.retry.maxRestarts = 0;
    const ClusterResult res = runCluster(*suite_, *artifacts_, cfg);

    ASSERT_EQ(res.outcomes.size(), 1u);
    const JobOutcome &out = res.outcomes[0];
    EXPECT_FALSE(out.completed);
    EXPECT_TRUE(out.failedPermanently);
    EXPECT_EQ(out.restarts, 1);
    EXPECT_FALSE(out.sloMet());
    EXPECT_EQ(res.permanentFailures, 1);
    // The kernel was mid-execution past its (empty) checkpoint, so
    // the crash destroyed real progress.
    EXPECT_GT(out.lostWorkNs, 0u);
    EXPECT_EQ(res.lostWorkNs, out.lostWorkNs);

    const ClusterMetrics m = computeClusterMetrics(res);
    EXPECT_EQ(m.permanentFailures, 1);
    EXPECT_LT(m.goodputFraction, 1.0);
    EXPECT_EQ(m.sloAttainment, 0.0);
}

TEST_F(ResilienceTest, TransientStallEvictsAndDeviceRejoins)
{
    // Single device: the stall evicts the job (the cluster cannot
    // tell a stall from a crash while it lasts), and the only path to
    // completion is the device rejoining after the outage.
    ClusterConfig cfg;
    cfg.devices = 1;
    cfg.jobs = {job(0, "VA", InputClass::Small, 0, 0, 2)};
    const Tick mid = baselineMakespan(cfg) / 2;

    cfg.resilience.faults = {stallAt(0, mid, 2 * 1000 * 1000)};
    const ClusterResult res = runCluster(*suite_, *artifacts_, cfg);

    ASSERT_EQ(res.outcomes.size(), 1u);
    const JobOutcome &out = res.outcomes[0];
    EXPECT_TRUE(out.completed);
    EXPECT_EQ(out.restarts, 1);
    EXPECT_EQ(out.device, 0);
    EXPECT_EQ(res.faultsInjected, 1);
    // It cannot restart before the outage ends.
    EXPECT_GT(out.finishTick, mid + 2 * 1000 * 1000);
}

TEST_F(ResilienceTest, CrashUnderFfsEvictsAllResidents)
{
    // FFS keeps per-process pending queues and a current grant; the
    // abandonAll path must purge them without granting from aborted
    // hosts (and without hanging the run).
    ClusterConfig cfg;
    cfg.devices = 2;
    cfg.deviceCapacity = 2;
    cfg.deviceScheduler = SchedulerKind::FlepFfs;
    cfg.jobs = {job(0, "VA", InputClass::Small, 1, 0, 2),
                job(1, "MM", InputClass::Small, 1, 0, 2)};
    // Crash early enough that neither resident has retired yet (the
    // faster job finishes around 29% of the fault-free makespan).
    const Tick early = baselineMakespan(cfg) / 4;

    cfg.resilience.faults = {crashAt(0, early)};
    const ClusterResult res = runCluster(*suite_, *artifacts_, cfg);

    ASSERT_EQ(res.outcomes.size(), 2u);
    for (const auto &out : res.outcomes) {
        EXPECT_TRUE(out.completed);
        EXPECT_EQ(out.device, 1);
    }
    EXPECT_EQ(res.restarts, 2);
}

TEST_F(ResilienceTest, RebalancerMigratesOffOverloadedDevice)
{
    // FirstFit piles both jobs onto device 0, leaving device 1 idle;
    // the rebalancer must move one over. Hysteresis bounds the churn:
    // once balanced, no further migration can strictly shrink the gap.
    ClusterConfig cfg;
    cfg.devices = 2;
    cfg.deviceCapacity = 2;
    cfg.jobs = {job(0, "VA", InputClass::Small, 0, 0, 4),
                job(1, "VA", InputClass::Small, 0, 0, 4)};
    cfg.resilience.migration.enabled = true;
    cfg.resilience.migration.intervalNs = 200 * 1000;
    cfg.resilience.migration.minImbalanceNs = 100 * 1000;
    const ClusterResult res = runCluster(*suite_, *artifacts_, cfg);

    ASSERT_EQ(res.outcomes.size(), 2u);
    EXPECT_TRUE(res.outcomes[0].completed);
    EXPECT_TRUE(res.outcomes[1].completed);
    EXPECT_GE(res.migrations, 1);
    EXPECT_LE(res.migrations, 2); // hysteresis: no ping-pong
    EXPECT_NE(res.outcomes[0].device, res.outcomes[1].device);
    EXPECT_EQ(res.restarts, 0);   // migration is not a failure
    EXPECT_EQ(res.lostWorkNs, 0u); // drain-first: nothing destroyed
}

/** Neutralize the CI slow-path override for macro comparisons. */
class MacroEnvGuard
{
  public:
    MacroEnvGuard()
    {
        const char *old = std::getenv(kVar);
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        ::unsetenv(kVar);
    }

    ~MacroEnvGuard()
    {
        if (had_)
            ::setenv(kVar, saved_.c_str(), 1);
    }

  private:
    static constexpr const char *kVar = "FLEP_MACRO_MAX_CHUNKS";
    bool had_ = false;
    std::string saved_;
};

TEST_F(ResilienceTest, FaultsLandingMidWindowStayBitIdentical)
{
    // The macro × resilience contract: a device crash, a transient
    // stall or a migration drain arriving while a joint macro-step
    // window is open must invalidate it cleanly — every outcome field
    // bit-identical to a run with the fast path disabled, at any
    // budget. Two jobs per device keep the windows joint (co-run),
    // not solo.
    MacroEnvGuard env;
    ClusterConfig base;
    base.devices = 2;
    base.deviceCapacity = 2;
    base.jobs = {job(0, "VA", InputClass::Small, 0, 0, 2),
                 job(1, "MM", InputClass::Small, 1, 500, 2),
                 job(2, "NN", InputClass::Small, 0, 1000, 2),
                 job(3, "VA", InputClass::Small, 1, 1500)};
    const Tick mid = baselineMakespan(base) / 2;

    struct Scenario
    {
        const char *name;
        ResilienceConfig resilience;
    };
    std::vector<Scenario> scenarios(3);
    scenarios[0].name = "crash";
    scenarios[0].resilience.faults = {crashAt(0, mid)};
    scenarios[1].name = "stall";
    scenarios[1].resilience.faults = {stallAt(0, mid, 2000000),
                                      stallAt(1, mid + 500000,
                                              1000000)};
    scenarios[2].name = "migration";
    scenarios[2].resilience.migration.enabled = true;
    scenarios[2].resilience.migration.intervalNs = 200 * 1000;
    scenarios[2].resilience.migration.minImbalanceNs = 100 * 1000;

    auto macroTotals = [](const ClusterResult &res) {
        DeviceMacroStats total;
        for (const auto &ms : res.deviceMacroStats) {
            total.fastChunks += ms.fastChunks;
            total.slowChunks += ms.slowChunks;
            total.windows += ms.windows;
            total.invalidations += ms.invalidations;
        }
        return total;
    };

    for (const Scenario &sc : scenarios) {
        ClusterConfig cfg = base;
        cfg.resilience = sc.resilience;

        cfg.gpu.macroStepMaxChunks = 0;
        const ClusterResult slow =
            runCluster(*suite_, *artifacts_, cfg);
        EXPECT_EQ(macroTotals(slow).windows, 0u);

        for (long budget : {1L, 256L, 2048L}) {
            SCOPED_TRACE(std::string(sc.name) + " budget " +
                         std::to_string(budget));
            cfg.gpu.macroStepMaxChunks = budget;
            const ClusterResult fast =
                runCluster(*suite_, *artifacts_, cfg);

            ASSERT_EQ(fast.outcomes.size(), slow.outcomes.size());
            for (std::size_t i = 0; i < fast.outcomes.size(); ++i)
                expectSameOutcome(fast.outcomes[i], slow.outcomes[i]);
            EXPECT_EQ(fast.makespanNs, slow.makespanNs);
            EXPECT_EQ(fast.restarts, slow.restarts);
            EXPECT_EQ(fast.migrations, slow.migrations);
            EXPECT_EQ(fast.lostWorkNs, slow.lostWorkNs);
            EXPECT_EQ(fast.faultsInjected, slow.faultsInjected);
            EXPECT_EQ(fast.devicePreemptions, slow.devicePreemptions);
            EXPECT_EQ(fast.deviceUtilization, slow.deviceUtilization);

            const DeviceMacroStats totals = macroTotals(fast);
            EXPECT_GT(totals.windows, 0u);
            EXPECT_GT(totals.fastChunks, 0u);
            if (budget >= 256) {
                // Long windows are near-certainly open when the fault
                // or drain lands; it must tear them down, not slip by.
                EXPECT_GT(totals.invalidations, 0u);
            }
        }
    }
}

TEST_F(ResilienceTest, FaultRunsAreDeterministicAcrossThreadCounts)
{
    // A faulty, migrating batch must still be bit-identical at any
    // host thread count: all resilience randomness comes from the
    // pre-computed plan, and all event ties resolve FIFO.
    FaultPlanConfig fp;
    fp.devices = 2;
    fp.horizonNs = 20 * 1000 * 1000;
    fp.seed = 11;
    fp.stallRatePerSec = 100.0;
    fp.meanStallNs = 1 * 1000 * 1000;

    ClusterConfig cfg;
    cfg.devices = 2;
    cfg.deviceCapacity = 2;
    cfg.jobs = {job(0, "VA", InputClass::Small, 0, 0, 2),
                job(1, "MM", InputClass::Small, 1, 500, 2),
                job(2, "NN", InputClass::Small, 0, 1000)};
    cfg.resilience.faults = generateFaultPlan(fp);
    cfg.resilience.migration.enabled = true;

    std::vector<ClusterConfig> cfgs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        cfg.seed = seed;
        cfgs.push_back(cfg);
    }
    const auto serial =
        runClusterBatch(*suite_, *artifacts_, cfgs, 1);
    const auto parallel =
        runClusterBatch(*suite_, *artifacts_, cfgs, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
        ASSERT_EQ(serial[r].outcomes.size(),
                  parallel[r].outcomes.size());
        for (std::size_t i = 0; i < serial[r].outcomes.size(); ++i)
            expectSameOutcome(serial[r].outcomes[i],
                              parallel[r].outcomes[i]);
        EXPECT_EQ(serial[r].makespanNs, parallel[r].makespanNs);
        EXPECT_EQ(serial[r].restarts, parallel[r].restarts);
        EXPECT_EQ(serial[r].migrations, parallel[r].migrations);
        EXPECT_EQ(serial[r].lostWorkNs, parallel[r].lostWorkNs);
    }
}

} // namespace
} // namespace flep
