/**
 * @file
 * Drain-boundary job checkpoints.
 *
 * FLEP's temporal preemption drains the persistent-thread kernel at a
 * task boundary (paper §4–5), so the entire restorable state of a
 * cluster job fits in a handful of integers: how many invocations have
 * completed, and how many tasks of the in-flight invocation were done
 * at the last drain. No device memory is copied — the task-boundary
 * drain is the context save, which is exactly what makes checkpointing
 * cheap enough to take at every preemption instead of on a timer.
 *
 * A checkpoint is captured passively inside callbacks the runtime
 * already fires (placement, invocation completion, and the
 * HostProcess::onDrainBoundary hook); capture allocates nothing,
 * schedules nothing and draws no randomness, so a run with
 * checkpointing enabled but no fault fired is bit-identical to a run
 * without the resilience layer.
 */

#ifndef FLEP_RESILIENCE_CHECKPOINT_HH
#define FLEP_RESILIENCE_CHECKPOINT_HH

#include <cstdint>

#include "common/types.hh"

namespace flep
{

/**
 * Restorable state of one cluster job. POD; copied around freely.
 *
 * `tasksDone` is absolute against the invocation's original task
 * count: a job restored mid-invocation runs a first script entry with
 * `totalTasks - tasksDone` tasks, and a later checkpoint of that
 * partial entry adds its own progress back onto the original base, so
 * repeated failures compose without extra bookkeeping.
 */
struct JobCheckpoint
{
    /** Job this checkpoint belongs to; -1 until first captured. */
    int jobId = -1;

    /** Fully completed invocations of the job's script entry. */
    int completedRepeats = 0;

    /** Completed tasks of the in-flight invocation at the last drain
     *  boundary (0 right after placement or a completed invocation),
     *  absolute against `totalTasks`. */
    long tasksDone = 0;

    /** Task count of one full invocation (the restore math's base). */
    long totalTasks = 0;

    /**
     * RNG cursor of the in-flight invocation: the number of per-task
     * cost draws its execution had consumed at capture (one draw per
     * completed task). A restore re-derives a fresh task-cost stream
     * for the remaining tasks — the simulated machine re-executes
     * them, it does not replay recorded timings — so the cursor is
     * diagnostic: it states where in the task stream the restored
     * entry resumes.
     */
    std::uint64_t rngCursor = 0;

    /** Simulated time of the last capture. */
    Tick capturedNs = 0;

    /**
     * Device that captured the last progress update; -1 before any
     * capture. Provenance only: progress is stored in *task* units,
     * which are hardware-independent, so a checkpoint taken on one
     * GpuConfig restores onto any other. What changes across configs
     * is the time-pricing of the remaining tasks, which the cluster
     * re-derives from the target device's PredictionProvider at
     * placement time (docs/resilience.md, heterogeneous migration).
     */
    int capturedOnDevice = -1;

    /** False until the job has been placed at least once. */
    bool valid = false;
};

} // namespace flep

#endif // FLEP_RESILIENCE_CHECKPOINT_HH
