/** @file Tests for the discrete-event queue. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace flep
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i]() { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&]() {
        q.scheduleAfter(50, [&]() { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(10, [&]() { ran = true; });
    EXPECT_TRUE(q.deschedule(id));
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DescheduleUnknownIdIsNoop)
{
    EventQueue q;
    EXPECT_FALSE(q.deschedule(9999));
}

TEST(EventQueue, DescheduleFiredEventReturnsFalse)
{
    EventQueue q;
    const EventId id = q.schedule(1, []() {});
    q.run();
    EXPECT_FALSE(q.deschedule(id));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&]() { ++count; });
    q.schedule(20, [&]() { ++count; });
    q.schedule(30, [&]() { ++count; });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(q.now(), 99u);
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(5, []() {});
    q.schedule(6, []() {});
    EXPECT_EQ(q.pendingCount(), 2u);
    q.deschedule(a);
    EXPECT_EQ(q.pendingCount(), 1u);
}

TEST(EventQueueDeath, NoSchedulingIntoThePast)
{
    EventQueue q;
    q.schedule(100, []() {});
    q.run();
    EXPECT_DEATH(q.schedule(50, []() {}), "past");
}

TEST(Simulation, SameSeedForksSameRngs)
{
    Simulation a(9);
    Simulation b(9);
    Rng ra = a.forkRng();
    Rng rb = b.forkRng();
    EXPECT_EQ(ra.next(), rb.next());
}

TEST(EventQueue, DescheduleTwiceReturnsFalseSecondTime)
{
    EventQueue q;
    const EventId id = q.schedule(10, []() {});
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));
    EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, DescheduleEarliestThenRunUntilSkipsTombstone)
{
    EventQueue q;
    std::vector<int> order;
    const EventId first = q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.schedule(30, [&]() { order.push_back(3); });
    q.deschedule(first);
    // runUntil must prune the cancelled head and stop on the true
    // next event time, not the tombstone's.
    q.runUntil(25);
    EXPECT_EQ(order, (std::vector<int>{2}));
    EXPECT_EQ(q.now(), 25u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(EventQueue, RunUntilAdvancesPastCancelledOnlyQueue)
{
    EventQueue q;
    const EventId a = q.schedule(10, []() {});
    const EventId b = q.schedule(20, []() {});
    q.deschedule(a);
    q.deschedule(b);
    EXPECT_TRUE(q.empty());
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_EQ(q.executedCount(), 0u);
}

TEST(EventQueue, CancelledEventsAreNotCountedAsExecuted)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        const EventId id =
            q.schedule(static_cast<Tick>(i), [&]() { ++fired; });
        if (i % 2 == 1)
            q.deschedule(id);
    }
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.executedCount(), 5u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SchedulingAfterCancelKeepsFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() { order.push_back(0); });
    const EventId cancel = q.schedule(5, [&]() { order.push_back(1); });
    q.schedule(5, [&]() { order.push_back(2); });
    q.deschedule(cancel);
    q.schedule(5, [&]() { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
}

TEST(EventQueue, CallbackCanCancelLaterEvent)
{
    EventQueue q;
    bool late_ran = false;
    EventId late = 0;
    late = q.schedule(50, [&]() { late_ran = true; });
    q.schedule(10, [&]() { EXPECT_TRUE(q.deschedule(late)); });
    q.run();
    EXPECT_FALSE(late_ran);
    EXPECT_EQ(q.executedCount(), 1u);
}

TEST(EventQueue, StressRandomCancellations)
{
    EventQueue q;
    Rng rng(99);
    std::vector<EventId> ids;
    int fired = 0;
    for (int i = 0; i < 5000; ++i) {
        const Tick when = static_cast<Tick>(rng.uniformInt(0, 50000));
        ids.push_back(q.schedule(when, [&fired]() { ++fired; }));
    }
    std::size_t cancelled = 0;
    for (std::size_t i = 0; i < ids.size(); i += 3) {
        if (q.deschedule(ids[i]))
            ++cancelled;
    }
    EXPECT_EQ(q.pendingCount(), 5000u - cancelled);
    q.run();
    EXPECT_EQ(static_cast<std::size_t>(fired), 5000u - cancelled);
    // Every cancelled id stays cancelled: deschedule after run is
    // false for fired and cancelled alike.
    for (EventId id : ids)
        EXPECT_FALSE(q.deschedule(id));
}

TEST(EventQueue, CompactionEvictsTombstoneBuildup)
{
    // Cancel-heavy workloads (macro-step window invalidation) must
    // not accumulate tombstones: once cancelled entries both exceed
    // 64 and outnumber live ones, the heap compacts.
    EventQueue q;
    std::vector<EventId> ids;
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
        ids.push_back(q.schedule(static_cast<Tick>(1000 + i),
                                 [&fired]() { ++fired; }));
    }
    for (int i = 0; i < 150; ++i)
        q.deschedule(ids[static_cast<std::size_t>(i)]);
    EXPECT_LE(q.tombstonesInHeap(), 50u); // live == 50 after compaction
    EXPECT_EQ(q.pendingCount(), 50u);
    q.run();
    EXPECT_EQ(fired, 50);
    EXPECT_EQ(q.executedCount(), 50u);
}

TEST(EventQueue, CompactionPreservesFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> cancel;
    // 100 same-tick events; cancel every other one (plus enough
    // filler to trip the compaction threshold), and the survivors
    // must still run in scheduling order.
    for (int i = 0; i < 100; ++i) {
        const EventId id =
            q.schedule(10, [&order, i]() { order.push_back(i); });
        if (i % 2 == 1)
            cancel.push_back(id);
    }
    for (int i = 0; i < 80; ++i)
        cancel.push_back(q.schedule(20, []() {}));
    for (EventId id : cancel)
        q.deschedule(id);
    q.run();
    ASSERT_EQ(order.size(), 50u);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LT(order[i - 1], order[i]);
}

TEST(EventQueue, ReservePreservesBehavior)
{
    // reserve() is a pure capacity hint: scheduling, cancellation and
    // ordering are unchanged, with or without it, over the hint size.
    EventQueue q;
    q.reserve(16);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        q.schedule(static_cast<Tick>(100 - i),
                   [&order, i]() { order.push_back(i); });
    const EventId extra = q.schedule(1000, []() {});
    EXPECT_TRUE(q.deschedule(extra));
    q.run();
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_GT(order[i - 1], order[i]);
    EXPECT_EQ(q.executedCount(), 100u);
}

TEST(EventQueue, StressManyEventsStayOrdered)
{
    EventQueue q;
    Rng rng(123);
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 20000; ++i) {
        const Tick when = static_cast<Tick>(rng.uniformInt(0, 100000));
        q.schedule(when, [&q, &last, &monotone]() {
            monotone = monotone && q.now() >= last;
            last = q.now();
        });
    }
    q.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(q.executedCount(), 20000u);
}

} // namespace
} // namespace flep
