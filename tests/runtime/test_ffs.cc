/** @file Unit tests for the FFS weighted round-robin policy. */

#include <gtest/gtest.h>

#include "fake_context.hh"
#include "runtime/ffs.hh"

namespace flep
{
namespace
{

using testing::FakeContext;
using testing::makeRecord;

TEST(Ffs, WeightMappingIsExplicit)
{
    FfsPolicy ffs;
    EXPECT_EQ(ffs.weightOf(1), 1u);
    EXPECT_EQ(ffs.weightOf(2), 2u);
    EXPECT_EQ(ffs.weightOf(7), 7u);
    // Priority 0 maps to Config::zeroPriorityWeight (default 1), not
    // to an implicit clamp.
    EXPECT_EQ(ffs.weightOf(0), 1u);
}

TEST(Ffs, ZeroPriorityWeightIsConfigurable)
{
    FfsPolicy::Config cfg;
    cfg.zeroPriorityWeight = 3;
    FfsPolicy ffs(cfg);
    EXPECT_EQ(ffs.weightOf(0), 3u);
    EXPECT_EQ(ffs.weightOf(1), 1u);
    EXPECT_EQ(ffs.weightOf(2), 2u);
}

TEST(FfsDeathTest, NegativePriorityAsserts)
{
    // Out-of-range priorities are a caller bug; the old code silently
    // clamped them to weight 1.
    FfsPolicy ffs;
    EXPECT_DEATH((void)ffs.weightOf(-3), "out of range");
}

TEST(FfsDeathTest, PriorityAboveMaxAsserts)
{
    FfsPolicy::Config cfg;
    cfg.maxPriority = 10;
    FfsPolicy ffs(cfg);
    EXPECT_DEATH((void)ffs.weightOf(11), "out of range");
}

TEST(Ffs, EpochBaseSatisfiesConstraint)
{
    // sum(O) / (T * sum(W)) <= max_overhead with O = 100us each,
    // weights 2 and 1: T >= 200us / (0.1 * 3) = 666.7us.
    FakeContext ctx;
    ctx.overhead = 100000;
    FfsPolicy::Config cfg;
    cfg.maxOverhead = 0.10;
    cfg.minEpochNs = 1;
    FfsPolicy ffs(cfg);
    auto a = makeRecord(0, "A", 2, 1000000);
    auto b = makeRecord(1, "B", 1, 1000000);
    ffs.onArrival(ctx, *a);
    ffs.onArrival(ctx, *b);
    const Tick t = ffs.epochBase(ctx);
    EXPECT_GE(t, 666666u);
    EXPECT_LE(t, 666668u);
    const double lhs = 200000.0 / (static_cast<double>(t) * 3.0);
    EXPECT_LE(lhs, 0.10 + 1e-9);
}

TEST(Ffs, FirstArrivalGrantsWithoutTimer)
{
    FakeContext ctx;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 1, 1000);
    ffs.onArrival(ctx, *a);
    EXPECT_EQ(ctx.log.back(), "grant:A");
    EXPECT_FALSE(ctx.timerArmed); // alone: no boundary needed
}

TEST(Ffs, SecondProcessArmsBoundaryTimer)
{
    FakeContext ctx;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 2, 1000000);
    auto b = makeRecord(1, "B", 1, 1000000);
    ffs.onArrival(ctx, *a);
    ffs.onArrival(ctx, *b);
    EXPECT_TRUE(ctx.timerArmed);
    EXPECT_EQ(ctx.runningRec, a.get());
}

TEST(Ffs, SlotExpiryPreemptsRunningKernel)
{
    FakeContext ctx;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 1, 100000000);
    auto b = makeRecord(1, "B", 1, 100000000);
    ffs.onArrival(ctx, *a);
    ffs.onArrival(ctx, *b);
    ctx.currentTick = ctx.timerDelay + 1;
    ffs.onTimer(ctx);
    EXPECT_EQ(ctx.log.back(), "preempt:A");
    // Drain completes -> B takes over.
    ctx.completeDrain(ffs, *a);
    EXPECT_EQ(ctx.log.back(), "grant:B");
    // A resumes when its slot comes around again.
    ctx.currentTick += ctx.timerDelay + 1;
    ffs.onTimer(ctx);
    ctx.completeDrain(ffs, *b);
    EXPECT_EQ(ctx.log.back(), "grant:A");
}

TEST(Ffs, SameProcessKernelsShareOneSlot)
{
    // Back-to-back kernels of the slot owner run without rotation.
    FakeContext ctx;
    FfsPolicy ffs;
    auto a1 = makeRecord(0, "A1", 2, 1000);
    auto b1 = makeRecord(1, "B1", 1, 1000);
    ffs.onArrival(ctx, *a1);
    ffs.onArrival(ctx, *b1);
    // A1 finishes quickly, well inside process 0's slot.
    ctx.currentTick = 1000;
    ctx.finish(ffs, *a1);
    auto a2 = makeRecord(0, "A2", 2, 1000);
    ffs.onArrival(ctx, *a2);
    EXPECT_EQ(ctx.log.back(), "grant:A2");
}

TEST(Ffs, RotationAtExpiredSlotOnFinish)
{
    FakeContext ctx;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 1, 1000);
    auto b = makeRecord(1, "B", 1, 1000);
    ffs.onArrival(ctx, *a);
    ffs.onArrival(ctx, *b);
    // A finishes after its slot expired: B must get the GPU.
    ctx.currentTick = ctx.timerDelay + 5000;
    ctx.finish(ffs, *a);
    EXPECT_EQ(ctx.log.back(), "grant:B");
}

TEST(Ffs, LoneProcessExtendsWithoutPreemption)
{
    FakeContext ctx;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 1, 100000000);
    ffs.onArrival(ctx, *a);
    EXPECT_FALSE(ctx.timerArmed);
    // Even a manual timer tick must not preempt a lone kernel.
    ctx.currentTick = 100000000;
    ffs.onTimer(ctx);
    for (const auto &entry : ctx.log)
        EXPECT_EQ(entry.find("preempt"), std::string::npos);
}

TEST(Ffs, OwnerArrivalAfterExpiredSlotRegrants)
{
    // Regression: a sole surviving process whose slot expired during
    // host think time used to starve — the owner-arrival fast path
    // only granted inside the slot, and with no competitor waiting no
    // boundary timer was armed, so nothing ever granted again.
    FakeContext ctx;
    FfsPolicy ffs;
    auto a1 = makeRecord(0, "A1", 1, 1000);
    ffs.onArrival(ctx, *a1);
    EXPECT_EQ(ctx.log.back(), "grant:A1");
    ctx.currentTick = 500;
    ctx.finish(ffs, *a1);
    // Think time carries the process well past its slot end.
    ctx.currentTick = 500000000;
    auto a2 = makeRecord(0, "A2", 1, 1000, ctx.currentTick);
    ffs.onArrival(ctx, *a2);
    EXPECT_EQ(ctx.log.back(), "grant:A2");
}

TEST(Ffs, AbandonRunningRotatesToNextProcess)
{
    // The cluster layer abandons the in-flight grant (migration or
    // fault eviction): FFS must drop its current_ pointer and hand
    // the GPU to the next process with work.
    FakeContext ctx;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 1, 100000000);
    auto b = makeRecord(1, "B", 1, 100000000);
    ffs.onArrival(ctx, *a);
    ffs.onArrival(ctx, *b);
    EXPECT_EQ(ctx.runningRec, a.get());
    // The runtime detaches the record before the policy callback.
    ctx.runningRec = nullptr;
    ffs.onAbandon(ctx, *a);
    EXPECT_EQ(ctx.log.back(), "grant:B");
}

TEST(Ffs, AbandonAllPurgesStateWithoutGranting)
{
    FakeContext ctx;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 1, 100000000);
    auto b = makeRecord(1, "B", 1, 100000000);
    ffs.onArrival(ctx, *a);
    ffs.onArrival(ctx, *b);
    EXPECT_TRUE(ctx.timerArmed);
    const std::size_t grants_before = ctx.log.size();
    ctx.runningRec = nullptr;
    ffs.onAbandonAll(ctx);
    EXPECT_FALSE(ctx.timerArmed);
    EXPECT_EQ(ctx.log.size(), grants_before); // no grant from the dead set
    // A fresh arrival opens a new slot as if the policy were new.
    auto c = makeRecord(2, "C", 1, 1000);
    ffs.onArrival(ctx, *c);
    EXPECT_EQ(ctx.log.back(), "grant:C");
}

TEST(Ffs, PreemptedKernelResumesAtFrontOfItsSlot)
{
    FakeContext ctx;
    FfsPolicy ffs;
    auto a1 = makeRecord(0, "A1", 1, 100000000);
    auto b1 = makeRecord(1, "B1", 1, 100000000);
    ffs.onArrival(ctx, *a1);
    ffs.onArrival(ctx, *b1);
    // Expire A's slot; A1 drains; B runs.
    ctx.currentTick = ctx.timerDelay + 1;
    ffs.onTimer(ctx);
    ctx.completeDrain(ffs, *a1);
    ASSERT_EQ(ctx.log.back(), "grant:B1");
    // Meanwhile another kernel of process 0 arrives; when the round
    // returns to process 0, the *preempted* kernel resumes first.
    auto a2 = makeRecord(0, "A2", 1, 1000);
    ffs.onArrival(ctx, *a2);
    ctx.currentTick += ctx.timerDelay + 1;
    ffs.onTimer(ctx);
    ctx.completeDrain(ffs, *b1);
    EXPECT_EQ(ctx.log.back(), "grant:A1");
}

TEST(Ffs, HigherWeightGetsLongerSlot)
{
    FakeContext ctx;
    ctx.overhead = 90000;
    FfsPolicy ffs;
    auto a = makeRecord(0, "A", 2, 100000000);
    auto b = makeRecord(1, "B", 1, 100000000);
    ffs.onArrival(ctx, *a); // slot for A: T * 2
    const Tick base = ffs.epochBase(ctx);
    ffs.onArrival(ctx, *b);
    // Timer armed for the remainder of A's 2-weight slot.
    EXPECT_LE(ctx.timerDelay, 2 * ffs.epochBase(ctx));
    // Rotate to B: slot length T * 1.
    ctx.currentTick = 2 * base + 1;
    ffs.onTimer(ctx);
    ctx.completeDrain(ffs, *a);
    EXPECT_EQ(ctx.log.back(), "grant:B");
    EXPECT_TRUE(ctx.timerArmed);
    EXPECT_LE(ctx.timerDelay, ffs.epochBase(ctx) + 1);
}

} // namespace
} // namespace flep
