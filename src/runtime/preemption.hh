/**
 * @file
 * Preemption-shape decisions: temporal vs spatial, and sizing.
 */

#ifndef FLEP_RUNTIME_PREEMPTION_HH
#define FLEP_RUNTIME_PREEMPTION_HH

#include "gpu/gpu_config.hh"
#include "workload/workload.hh"

namespace flep
{

/** How a preemption should be carried out. */
struct PreemptionPlan
{
    /**
     * Value to write into the victim's flag: CTAs on SMs with id less
     * than this yield. Equal to numSms for temporal preemption.
     */
    int smCount = 0;

    /** True when only part of the device is yielded. */
    bool spatial = false;
};

/**
 * Number of SMs the waiting kernel's persistent wave needs: the CTA
 * count of its wave divided by its per-SM occupancy, rounded up and
 * clamped to the device size.
 */
int smsNeededForInput(const GpuConfig &cfg, const InputSpec &in);

/**
 * Decide the preemption shape for scheduling `incoming` over a running
 * victim. Spatial preemption is chosen when it is enabled and the
 * incoming kernel needs strictly fewer SMs than the device has;
 * `forced_sms` > 0 overrides the SM count (the Figure 16 sweep).
 */
PreemptionPlan planPreemption(const GpuConfig &cfg,
                              const InputSpec &incoming,
                              bool spatial_enabled, int forced_sms);

/** Human-readable kind of a plan: "spatial" or "temporal". */
const char *preemptionKindName(const PreemptionPlan &plan);

} // namespace flep

#endif // FLEP_RUNTIME_PREEMPTION_HH
