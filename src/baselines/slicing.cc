#include "baselines/slicing.hh"

#include <algorithm>

#include "common/logging.hh"
#include "gpu/occupancy.hh"
#include "runtime/host_process.hh"

namespace flep
{

SlicingDispatcher::SlicingDispatcher(const GpuConfig &cfg)
    : cfg_(cfg)
{}

long
SlicingDispatcher::sliceTasks(const Workload &w, int amortize_l) const
{
    // Match FLEP's preemption granularity: one L-task chunk on every
    // concurrent CTA slot.
    const long slots = deviceCtaCapacity(cfg_, w.footprint());
    return std::max<long>(1, slots * amortize_l);
}

void
SlicingDispatcher::onInvoke(HostProcess &host)
{
    if (active_ == nullptr) {
        active_ = &host;
        host.grantSlice();
    } else {
        queue_.push_back(&host);
    }
}

void
SlicingDispatcher::grantNext()
{
    if (queue_.empty())
        return;
    // Highest priority first; FIFO within a priority.
    auto it = std::max_element(
        queue_.begin(), queue_.end(),
        [](const HostProcess *a, const HostProcess *b) {
            return a->invocation().priority < b->invocation().priority;
        });
    active_ = *it;
    queue_.erase(it);
    active_->grantSlice();
}

void
SlicingDispatcher::onFinished(HostProcess &host)
{
    if (active_ == &host)
        active_ = nullptr;
    if (active_ == nullptr)
        grantNext();
}

void
SlicingDispatcher::onSliceBoundary(HostProcess &host)
{
    FLEP_ASSERT(active_ == &host, "slice boundary from inactive host");
    // Preemption point: a waiting higher-priority program wins the
    // GPU; the current invocation re-queues and resumes later.
    auto it = std::max_element(
        queue_.begin(), queue_.end(),
        [](const HostProcess *a, const HostProcess *b) {
            return a->invocation().priority < b->invocation().priority;
        });
    if (it != queue_.end() &&
        (*it)->invocation().priority > host.invocation().priority) {
        HostProcess *winner = *it;
        queue_.erase(it);
        queue_.push_back(&host);
        active_ = winner;
        winner->grantSlice();
    } else {
        host.grantSlice();
    }
}

} // namespace flep
