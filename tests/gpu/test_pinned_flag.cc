/** @file Tests for the pinned-memory preemption flag. */

#include <gtest/gtest.h>

#include "gpu/pinned_flag.hh"

namespace flep
{
namespace
{

TEST(PinnedFlag, InitiallyZero)
{
    PinnedFlag flag(500);
    EXPECT_EQ(flag.deviceRead(0), 0);
    EXPECT_EQ(flag.hostValue(), 0);
}

TEST(PinnedFlag, WriteVisibleAfterDelay)
{
    PinnedFlag flag(500);
    flag.hostWrite(1000, 15);
    EXPECT_EQ(flag.deviceRead(1000), 0);
    EXPECT_EQ(flag.deviceRead(1499), 0);
    EXPECT_EQ(flag.deviceRead(1500), 15);
    EXPECT_EQ(flag.deviceRead(999999), 15);
}

TEST(PinnedFlag, HostSeesOwnWriteImmediately)
{
    PinnedFlag flag(500);
    flag.hostWrite(100, 7);
    EXPECT_EQ(flag.hostValue(), 7);
}

TEST(PinnedFlag, ZeroDelayIsImmediate)
{
    PinnedFlag flag(0);
    flag.hostWrite(100, 3);
    EXPECT_EQ(flag.deviceRead(100), 3);
}

TEST(PinnedFlag, OverlappingWriteSupersedesPendingOne)
{
    // A store issued before the previous one became visible replaces
    // it: the superseded value is never observed by the device.
    PinnedFlag flag(500);
    flag.hostWrite(1000, 15);
    flag.hostWrite(1100, 0); // cleared before the first landed
    EXPECT_EQ(flag.deviceRead(1200), 0); // neither landed: old value
    EXPECT_EQ(flag.deviceRead(1700), 0); // the clear wins
    EXPECT_EQ(flag.hostValue(), 0);
}

TEST(PinnedFlag, SequentialWritesObserveInOrder)
{
    PinnedFlag flag(100);
    flag.hostWrite(0, 5);
    EXPECT_EQ(flag.deviceRead(150), 5);
    flag.hostWrite(200, 9);
    EXPECT_EQ(flag.deviceRead(250), 5);
    EXPECT_EQ(flag.deviceRead(300), 9);
}

} // namespace
} // namespace flep
