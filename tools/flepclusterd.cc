/**
 * @file
 * flepclusterd: run one cluster scheduling scenario and print the
 * per-device timeline.
 *
 * Generates an open-loop job arrival trace (or replays the built-in
 * two-class mix), schedules it on a simulated multi-GPU cluster with
 * the chosen placement policy, and prints each device's job timeline
 * plus the cluster service metrics.
 *
 *   flepclusterd [options]
 *
 * Options:
 *   --devices=<N>        GPUs in the cluster (default 2)
 *   --gpus=<S1,S2,...>   per-device SM counts (heterogeneous fleet;
 *                        one entry per device, or per device+spare)
 *   --placement=<name>   first-fit|least-loaded|preemptive-priority
 *   --prediction=<name>  heuristic|trained|oracle demand estimates
 *   --load=<F>           offered load per device (default 0.9)
 *   --jobs=<N>           target job count (default 24)
 *   --repeats=<N>        kernel invocations per job (default 1)
 *   --capacity=<N>       cluster job slots per device (default 1)
 *   --bursty             bursty arrivals instead of Poisson
 *   --seed=<N>           trace + simulation seed (default 1)
 *   --horizon-ms=<N>     cut the run off (default: run to completion)
 *   --trace=<file>       write a Chrome trace of the run
 *   --ffs                FLEP-FFS device scheduler instead of HPF
 *
 * Resilience (see docs/resilience.md):
 *   --checkpoints        capture drain-boundary job checkpoints
 *   --fault-rate=<F>     generated faults per device-second
 *                        (20% crashes, 80% transient stalls)
 *   --kill=<dev>@<ms>    scripted device crash (repeatable)
 *   --migrate            enable the periodic load rebalancer
 *   --spares=<N>         warm spare devices (crash-activated)
 *   --spare-delay-us=<N> spare crash-to-ready latency (default 500)
 *
 * Examples:
 *   flepclusterd --devices=2 --placement=preemptive-priority \
 *                --load=1.2 --jobs=30
 *   flepclusterd --devices=3 --kill=0@2 --migrate
 *   flepclusterd --devices=2 --gpus=15,5,15 --spares=1 --kill=0@2
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/arrival_gen.hh"
#include "cluster/cluster.hh"
#include "cluster/cluster_metrics.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "flep/experiment.hh"
#include "resilience/fault_plan.hh"

namespace
{

using namespace flep;

struct Options
{
    int devices = 2;
    PlacementKind placement = PlacementKind::FirstFit;
    PredictionSource prediction = PredictionSource::Heuristic;
    double load = 0.9;
    long jobs = 24;
    int repeats = 1;
    int capacity = 1;
    bool bursty = false;
    std::uint64_t seed = 1;
    Tick horizonNs = 0;
    std::string tracePath;
    SchedulerKind deviceScheduler = SchedulerKind::FlepHpf;
    bool checkpoints = false;
    double faultRatePerSec = 0.0;
    std::vector<FaultEvent> scriptedFaults;
    bool migrate = false;
    int spares = 0;
    Tick spareDelayNs = 500 * 1000;
    std::vector<int> gpuSms;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: flepclusterd [options]\n"
        "  --devices=<N>        GPUs in the cluster (default 2)\n"
        "  --placement=<name>   first-fit|least-loaded|"
        "preemptive-priority\n"
        "  --prediction=<name>  heuristic|trained|oracle demand "
        "estimates\n"
        "  --load=<F>           offered load per device (default "
        "0.9)\n"
        "  --jobs=<N>           target job count (default 24)\n"
        "  --repeats=<N>        kernel invocations per job "
        "(default 1)\n"
        "  --capacity=<N>       job slots per device (default 1)\n"
        "  --bursty             bursty arrivals instead of Poisson\n"
        "  --seed=<N>           trace + simulation seed (default 1)\n"
        "  --horizon-ms=<N>     cut the run off after N ms\n"
        "  --trace=<file>       write a Chrome trace of the run\n"
        "  --ffs                FLEP-FFS device scheduler\n"
        "  --checkpoints        capture drain-boundary checkpoints\n"
        "  --fault-rate=<F>     generated faults per device-second\n"
        "  --kill=<dev>@<ms>    scripted device crash (repeatable)\n"
        "  --migrate            enable the load rebalancer\n"
        "  --spares=<N>         warm spare devices "
        "(crash-activated)\n"
        "  --spare-delay-us=<N> spare crash-to-ready latency "
        "(default 500)\n"
        "  --gpus=<S1,S2,...>   per-device SM counts "
        "(heterogeneous fleet)\n");
    std::exit(code);
}

long
parseLong(const std::string &text, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "flepclusterd: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

double
parseDouble(const std::string &text, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "flepclusterd: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (startsWith(arg, "--devices=")) {
            opts.devices =
                static_cast<int>(parseLong(arg.substr(10), "devices"));
        } else if (startsWith(arg, "--placement=")) {
            const std::string name = arg.substr(12);
            if (!parsePlacementKind(name, opts.placement)) {
                std::string valid;
                for (PlacementKind k : allPlacementKinds()) {
                    if (!valid.empty())
                        valid += ", ";
                    valid += placementKindName(k);
                }
                std::fprintf(stderr,
                             "flepclusterd: unknown placement '%s' "
                             "(valid: %s)\n",
                             name.c_str(), valid.c_str());
                std::exit(2);
            }
        } else if (startsWith(arg, "--prediction=")) {
            const std::string name = arg.substr(13);
            if (!parsePredictionSource(name, opts.prediction)) {
                std::string valid;
                for (PredictionSource s : allPredictionSources()) {
                    if (!valid.empty())
                        valid += ", ";
                    valid += predictionSourceName(s);
                }
                std::fprintf(stderr,
                             "flepclusterd: unknown prediction "
                             "source '%s' (valid: %s)\n",
                             name.c_str(), valid.c_str());
                std::exit(2);
            }
        } else if (startsWith(arg, "--load=")) {
            opts.load = parseDouble(arg.substr(7), "load");
        } else if (startsWith(arg, "--jobs=")) {
            opts.jobs = parseLong(arg.substr(7), "jobs");
        } else if (startsWith(arg, "--repeats=")) {
            opts.repeats = static_cast<int>(
                parseLong(arg.substr(10), "repeats"));
        } else if (startsWith(arg, "--capacity=")) {
            opts.capacity = static_cast<int>(
                parseLong(arg.substr(11), "capacity"));
        } else if (arg == "--bursty") {
            opts.bursty = true;
        } else if (startsWith(arg, "--seed=")) {
            opts.seed = static_cast<std::uint64_t>(
                parseLong(arg.substr(7), "seed"));
        } else if (startsWith(arg, "--horizon-ms=")) {
            opts.horizonNs = static_cast<Tick>(
                parseLong(arg.substr(13), "horizon") * ticksPerMs);
        } else if (startsWith(arg, "--trace=")) {
            opts.tracePath = arg.substr(8);
        } else if (arg == "--ffs") {
            opts.deviceScheduler = SchedulerKind::FlepFfs;
        } else if (arg == "--checkpoints") {
            opts.checkpoints = true;
        } else if (startsWith(arg, "--fault-rate=")) {
            opts.faultRatePerSec =
                parseDouble(arg.substr(13), "fault rate");
            if (opts.faultRatePerSec < 0.0) {
                std::fprintf(stderr,
                             "flepclusterd: fault rate must be >= 0\n");
                std::exit(2);
            }
        } else if (startsWith(arg, "--kill=")) {
            const std::string spec = arg.substr(7);
            const std::size_t at = spec.find('@');
            if (at == std::string::npos) {
                std::fprintf(stderr,
                             "flepclusterd: --kill wants <dev>@<ms>, "
                             "got '%s'\n",
                             spec.c_str());
                std::exit(2);
            }
            FaultEvent ev;
            ev.kind = FaultKind::DeviceCrash;
            ev.device = static_cast<int>(
                parseLong(spec.substr(0, at), "kill device"));
            ev.atNs = static_cast<Tick>(
                parseLong(spec.substr(at + 1), "kill time") *
                ticksPerMs);
            opts.scriptedFaults.push_back(ev);
        } else if (arg == "--migrate") {
            opts.migrate = true;
        } else if (startsWith(arg, "--spares=")) {
            opts.spares = static_cast<int>(
                parseLong(arg.substr(9), "spares"));
        } else if (startsWith(arg, "--spare-delay-us=")) {
            opts.spareDelayNs = static_cast<Tick>(
                parseLong(arg.substr(17), "spare delay") *
                ticksPerUs);
        } else if (startsWith(arg, "--gpus=")) {
            std::string list = arg.substr(7);
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string entry = list.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                opts.gpuSms.push_back(static_cast<int>(
                    parseLong(entry, "gpu SM count")));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr, "flepclusterd: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opts.devices < 1 || opts.jobs < 1 || opts.capacity < 1 ||
        opts.repeats < 1 || opts.load <= 0.0 || opts.spares < 0) {
        std::fprintf(stderr, "flepclusterd: bad parameters\n");
        std::exit(2);
    }
    if (!opts.gpuSms.empty()) {
        const std::size_t devices =
            static_cast<std::size_t>(opts.devices);
        const std::size_t fleet =
            devices + static_cast<std::size_t>(opts.spares);
        if (opts.gpuSms.size() != devices &&
            opts.gpuSms.size() != fleet) {
            std::fprintf(stderr,
                         "flepclusterd: --gpus wants %zu entries "
                         "(devices) or %zu (devices+spares), got %zu\n",
                         devices, fleet, opts.gpuSms.size());
            std::exit(2);
        }
        for (int sms : opts.gpuSms) {
            if (sms < 1) {
                std::fprintf(stderr,
                             "flepclusterd: --gpus SM counts must be "
                             ">= 1\n");
                std::exit(2);
            }
        }
    }
    for (const FaultEvent &ev : opts.scriptedFaults) {
        if (ev.device < 0 || ev.device >= opts.devices) {
            std::fprintf(stderr,
                         "flepclusterd: --kill device %d outside the "
                         "%d-device cluster\n",
                         ev.device, opts.devices);
            std::exit(2);
        }
    }
    return opts;
}

int
runTool(const Options &opts)
{
    const BenchmarkSuite suite;
    const GpuConfig gpu = GpuConfig::keplerK40();
    const OfflineArtifacts &artifacts = defaultArtifacts(suite, gpu);

    // The built-in two-class mix: low-priority batch VA jobs and
    // high-priority interactive NN jobs with a turnaround SLO.
    ArrivalClassSpec batch;
    batch.workload = "VA";
    batch.input = InputClass::Large;
    batch.priority = 0;
    batch.repeats = opts.repeats;

    ArrivalClassSpec interactive;
    interactive.workload = "NN";
    interactive.input = InputClass::Small;
    interactive.priority = 5;
    interactive.repeats = opts.repeats;

    // Whole-job demand scales with the invocation count, so the
    // offered-load arithmetic and the SLO bound both carry `repeats`.
    const double svc_batch =
        artifacts.models.at("VA").predictNs(
            suite.byName("VA").input(InputClass::Large)) *
        opts.repeats;
    const double svc_inter =
        artifacts.models.at("NN").predictNs(
            suite.byName("NN").input(InputClass::Small)) *
        opts.repeats;
    interactive.sloNs = static_cast<Tick>(4.0 * svc_inter);

    const double svc_ms = (0.6 * svc_batch + 0.4 * svc_inter) / 1e6;
    const double rate_per_ms =
        opts.load * static_cast<double>(opts.devices) / svc_ms;

    ClusterArrivalConfig acfg;
    acfg.pattern = opts.bursty ? ArrivalPattern::Bursty
                               : ArrivalPattern::Poisson;
    acfg.horizonNs = static_cast<Tick>(
        static_cast<double>(opts.jobs) / rate_per_ms * 1e6);
    acfg.seed = opts.seed;
    acfg.classes = {batch, interactive};
    acfg.classes[0].ratePerMs = 0.6 * rate_per_ms;
    acfg.classes[1].ratePerMs = 0.4 * rate_per_ms;

    ClusterConfig cfg;
    cfg.gpu = gpu;
    cfg.devices = opts.devices;
    cfg.spareDevices = opts.spares;
    cfg.spareActivationDelayNs = opts.spareDelayNs;
    for (int sms : opts.gpuSms) {
        GpuConfig dev = gpu;
        dev.numSms = sms;
        cfg.deviceGpus.push_back(dev);
    }
    cfg.placement = opts.placement;
    cfg.prediction = opts.prediction;
    cfg.deviceScheduler = opts.deviceScheduler;
    cfg.deviceCapacity = opts.capacity;
    cfg.jobs = generateClusterJobs(acfg);
    cfg.horizonNs = opts.horizonNs;
    cfg.seed = opts.seed;
    cfg.tracePath = opts.tracePath;

    cfg.resilience.checkpoints = opts.checkpoints;
    cfg.resilience.migration.enabled = opts.migrate;
    cfg.resilience.faults = opts.scriptedFaults;
    if (opts.faultRatePerSec > 0.0) {
        // Same split as bench_cluster_resilience: crashes are
        // permanent, so stalls carry most of the rate. Faults may
        // strike while requeued work drains past the arrival window.
        FaultPlanConfig fcfg;
        fcfg.devices = opts.devices;
        fcfg.horizonNs = acfg.horizonNs * 3;
        fcfg.seed = opts.seed ^ 0x9e3779b97f4a7c15ull;
        fcfg.crashRatePerSec = 0.2 * opts.faultRatePerSec;
        fcfg.stallRatePerSec = 0.8 * opts.faultRatePerSec;
        const auto generated = generateFaultPlan(fcfg);
        cfg.resilience.faults.insert(cfg.resilience.faults.end(),
                                     generated.begin(),
                                     generated.end());
    }
    std::sort(cfg.resilience.faults.begin(),
              cfg.resilience.faults.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  return a.atNs != b.atNs ? a.atNs < b.atNs
                                          : a.device < b.device;
              });

    /** Hardware model of fleet device `d` (primaries then spares). */
    const auto gpuAt = [&cfg](int d) -> const GpuConfig & {
        const auto idx = static_cast<std::size_t>(d);
        return idx < cfg.deviceGpus.size() ? cfg.deviceGpus[idx]
                                           : cfg.gpu;
    };
    const int fleet = cfg.devices + cfg.spareDevices;
    std::string fleet_desc;
    bool hetero = false;
    for (int d = 0; d < fleet; ++d)
        hetero = hetero || gpuAt(d).numSms != cfg.gpu.numSms;
    if (hetero) {
        for (int d = 0; d < fleet; ++d) {
            if (!fleet_desc.empty())
                fleet_desc += ",";
            fleet_desc += std::to_string(gpuAt(d).numSms);
        }
        fleet_desc = format("%d GPUs (%s SMs)", fleet,
                            fleet_desc.c_str());
    } else {
        fleet_desc =
            format("%d x %d-SM GPU", fleet, cfg.gpu.numSms);
    }
    std::printf("cluster: %s%s, %s placement, %s "
                "prediction, %s, load %.2f, %zu jobs, seed %llu\n",
                fleet_desc.c_str(),
                cfg.spareDevices > 0
                    ? format(" (%d warm spare%s)", cfg.spareDevices,
                             cfg.spareDevices == 1 ? "" : "s")
                          .c_str()
                    : "",
                placementKindName(cfg.placement),
                predictionSourceName(cfg.prediction),
                schedulerKindName(cfg.deviceScheduler), opts.load,
                cfg.jobs.size(),
                static_cast<unsigned long long>(cfg.seed));

    const ClusterResult res = runCluster(suite, artifacts, cfg);

    // Per-device timeline: jobs in placement order (primaries first,
    // then warm spares).
    for (int d = 0; d < fleet; ++d) {
        const DeviceMacroStats &ms =
            res.deviceMacroStats[static_cast<size_t>(d)];
        const bool spare = d >= cfg.devices;
        const bool used =
            res.deviceJobCounts[static_cast<size_t>(d)] > 0;
        std::printf("\ndevice %d  (%d SMs%s, util %.3f, "
                    "%ld preemptions, %ld jobs, macro hit %.3f over "
                    "%llu windows)\n",
                    d, gpuAt(d).numSms,
                    spare ? (used ? ", spare: activated"
                                  : ", spare: cold")
                          : "",
                    res.deviceUtilization[static_cast<size_t>(d)],
                    res.devicePreemptions[static_cast<size_t>(d)],
                    res.deviceJobCounts[static_cast<size_t>(d)],
                    ms.hitRate,
                    static_cast<unsigned long long>(ms.windows));
        std::vector<const JobOutcome *> placed;
        for (const auto &out : res.outcomes) {
            if (out.placed && out.device == d)
                placed.push_back(&out);
        }
        std::sort(placed.begin(), placed.end(),
                  [](const JobOutcome *a, const JobOutcome *b) {
                      return a->placeTick < b->placeTick;
                  });
        for (const JobOutcome *out : placed) {
            const std::string finish = out->completed
                ? format("%10.1f", ticksToUs(out->finishTick))
                : std::string(out->failedPermanently ? "  (failed)"
                                                     : "   (cut)  ");
            std::string marks;
            if (out->displacedVictim)
                marks += "  [displaced victim]";
            if (out->restarts > 0)
                marks += format("  [%d restart%s]", out->restarts,
                                out->restarts == 1 ? "" : "s");
            if (out->migrations > 0)
                marks += format("  [%d migration%s]", out->migrations,
                                out->migrations == 1 ? "" : "s");
            std::printf(
                "  [%8.1f .. %s us] job%-3d %-4s prio %d  "
                "queued %8.1f us%s%s\n",
                ticksToUs(out->placeTick), finish.c_str(),
                out->job.id, out->job.workload.c_str(),
                out->job.priority, ticksToUs(out->queueDelayNs()),
                marks.c_str(),
                out->job.sloNs > 0
                    ? (out->sloMet() ? "  SLO met" : "  SLO MISS")
                    : "");
        }
    }

    const ClusterMetrics m = computeClusterMetrics(res);
    std::printf("\n%zu jobs, %zu completed; SLO attainment %.3f "
                "(%zu/%zu)",
                m.jobs, m.completed, m.sloAttainment, m.sloMet,
                m.sloJobs);
    auto high = m.sloAttainmentByPriority.find(5);
    if (high != m.sloAttainmentByPriority.end())
        std::printf(", high-priority %.3f", high->second);
    if (!m.sloAttainmentByInputClass.empty()) {
        // The size-based breakdown: under the same placement, large
        // SLO jobs miss for different reasons than trivial ones.
        std::printf("\nSLO attainment by input class:");
        for (const auto &entry : m.sloAttainmentByInputClass)
            std::printf(" %s %.3f", inputClassName(entry.first),
                        entry.second);
    }
    std::printf("\nqueueing delay p50 %.1f us, p99 %.1f us; mean "
                "turnaround %.1f us\n",
                m.p50QueueDelayUs, m.p99QueueDelayUs,
                m.meanTurnaroundUs);
    std::printf("placements: %ld (%ld preemptive); device "
                "preemptions: %ld\n",
                res.placements, res.preemptivePlacements,
                m.devicePreemptions);
    std::printf("mean |prediction error| %.1f%%\n",
                m.meanAbsPredictionErrorPct);
    std::printf("macro-stepping: hit rate %.3f (%llu fast / %llu "
                "slow chunks), %llu windows, %llu invalidations\n",
                m.macroHitRate,
                static_cast<unsigned long long>(m.macroFastChunks),
                static_cast<unsigned long long>(m.macroSlowChunks),
                static_cast<unsigned long long>(m.macroWindows),
                static_cast<unsigned long long>(m.macroInvalidations));
    if (cfg.resilience.active()) {
        std::printf("resilience: %ld faults injected, %ld restarts, "
                    "%ld migrations, %ld permanent failures\n",
                    m.faultsInjected, m.restarts, m.migrations,
                    m.permanentFailures);
        std::printf("lost work %.1f us, goodput fraction %.3f\n",
                    ticksToUs(m.lostWorkNs), m.goodputFraction);
        if (cfg.spareDevices > 0) {
            std::printf("spares: %ld of %d activated, %ld jobs "
                        "absorbed, mean activation latency %.1f us\n",
                        m.sparesActivated, cfg.spareDevices,
                        m.jobsAbsorbedBySpares,
                        m.meanSpareActivationLatencyUs);
        }
        bool any_rate = false;
        for (double rate : m.deviceFaultRatePerSec)
            any_rate = any_rate || rate > 0.0;
        if (any_rate) {
            std::printf("decayed fault rates (events/s):");
            for (std::size_t d = 0;
                 d < m.deviceFaultRatePerSec.size(); ++d)
                std::printf(" dev%zu %.2f", d,
                            m.deviceFaultRatePerSec[d]);
            std::printf("\n");
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runTool(parseArgs(argc, argv));
    } catch (const FatalError &err) {
        std::fprintf(stderr, "flepclusterd: %s\n", err.what());
        return 1;
    }
}
