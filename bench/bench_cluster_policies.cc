/**
 * @file
 * Cluster placement-policy sweep: SLO attainment under load.
 *
 * Two sweeps over open-loop job mixes (low-priority batch jobs plus
 * high-priority interactive jobs with turnaround SLOs):
 *
 *  1. Placement policy x device count {1, 2, 4} x offered load
 *     {0.5, 0.9, 1.2} — which policy keeps interactive SLOs when the
 *     fleet saturates.
 *  2. Prediction source (heuristic | trained | oracle) x offered
 *     load {0.9, 1.2} under the preemptive-priority policy — what
 *     the trained perfmodel buys over flat queue-depth-style demand
 *     estimates, bounded by a measured-solo-duration oracle. The mix
 *     mixes short and long same-priority interactive classes, which
 *     the flat heuristic cannot tell apart.
 *
 * Per cell: high-priority SLO attainment, queueing-delay percentiles,
 * device utilization, preemption cost, and (sweep 2) the realized
 * prediction error. Results go to stdout and BENCH_cluster.json
 * (override the path with FLEP_CLUSTER_OUT).
 *
 * The experiment extends the paper's motivation (§2.2: GPUs serving
 * "a large number of short queries from user-facing interactive
 * applications") from one device to a fleet: cheap device-level
 * preemption is what makes preemption-aware *placement* pay off,
 * and at overload the preemptive-priority policy keeps interactive
 * SLOs where first-fit lets them starve behind batch work.
 *
 * Environment knobs (see bench/common/bench_util.hh for the shared
 * ones): FLEP_REPS, FLEP_THREADS, FLEP_TRACE, plus
 *   FLEP_CLUSTER_JOBS  target jobs per cell (default 40).
 *
 * The sweep is deterministic: every run derives its randomness from
 * its own seed (the oracle's solo measurements use fixed seeds of
 * their own), so BENCH_cluster.json is bit-identical at any
 * FLEP_THREADS setting.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/arrival_gen.hh"
#include "cluster/cluster.hh"
#include "cluster/cluster_metrics.hh"
#include "common/bench_util.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "common/table.hh"

namespace flep
{
namespace
{

using benchutil::BenchEnv;
using benchutil::envLong;

constexpr Priority kBatchPrio = 0;
constexpr Priority kInteractivePrio = 5;

struct Cell
{
    PlacementKind placement;
    int devices;
    double load;
};

struct PredictionCell
{
    PredictionSource source;
    double load;
};

struct CellStats
{
    double sloHigh = 0.0;   //!< high-priority SLO attainment
    double sloAll = 0.0;    //!< overall SLO attainment
    double p50QueueUs = 0.0;
    double p99QueueUs = 0.0;
    double meanTurnUs = 0.0;
    double utilization = 0.0; //!< mean over devices
    double devicePreemptions = 0.0;
    double preemptivePlacements = 0.0;
    double predictionErrPct = 0.0; //!< mean |predicted - actual| %
    std::size_t jobs = 0;
};

/** A workload mix: arrival classes plus their rate weights. */
struct Mix
{
    std::vector<ArrivalClassSpec> classes;
    std::vector<double> weights;    //!< arrival-rate shares, sum 1
    double meanServiceNs = 0.0;     //!< per arrival, rate-weighted
};

/** Trained-model whole-job demand of one arrival class. */
double
predictJobNs(const BenchEnv &env, const ArrivalClassSpec &cls)
{
    const InputSpec in =
        env.suite().byName(cls.workload).input(cls.input);
    return env.artifacts().models.at(cls.workload).predictNs(in) *
           cls.repeats;
}

void
finishMix(const BenchEnv &env, Mix &mix)
{
    mix.meanServiceNs = 0.0;
    for (std::size_t i = 0; i < mix.classes.size(); ++i)
        mix.meanServiceNs +=
            mix.weights[i] * predictJobNs(env, mix.classes[i]);
}

/** The placement sweep's two-class mix (single-invocation jobs). */
Mix
buildPlacementMix(const BenchEnv &env)
{
    Mix mix;
    mix.classes.resize(2);
    ArrivalClassSpec &batch = mix.classes[0];
    batch.workload = "VA";
    batch.input = InputClass::Large;
    batch.priority = kBatchPrio;
    batch.sloNs = 0;

    ArrivalClassSpec &interactive = mix.classes[1];
    interactive.workload = "NN";
    interactive.input = InputClass::Small;
    interactive.priority = kInteractivePrio;
    // Interactive jobs must beat their solo latency with modest
    // headroom; the headroom is far below one batch service time, so
    // attainment hinges on not waiting behind batch work.
    interactive.sloNs =
        static_cast<Tick>(4.0 * predictJobNs(env, interactive));

    mix.weights = {0.6, 0.4};
    finishMix(env, mix);
    return mix;
}

/**
 * The prediction sweep's three-class mix. Multi-invocation jobs give
 * every job a queued tail only the fixed backlog accounting can see,
 * and the two same-priority interactive classes invert invocation
 * count against true demand: four short NN invocations are ~2x
 * cheaper than one long SPMV invocation, so a flat per-invocation
 * estimate ranks the devices backwards while the trained model (and
 * the oracle above it) ranks them right.
 */
Mix
buildPredictionMix(const BenchEnv &env)
{
    Mix mix;
    mix.classes.resize(3);
    ArrivalClassSpec &batch = mix.classes[0];
    batch.workload = "VA";
    batch.input = InputClass::Large;
    batch.priority = kBatchPrio;
    batch.sloNs = 0;
    batch.repeats = 2;

    ArrivalClassSpec &query = mix.classes[1];
    query.workload = "NN";
    query.input = InputClass::Small;
    query.priority = kInteractivePrio;
    query.repeats = 4;
    query.sloNs = static_cast<Tick>(2.5 * predictJobNs(env, query));

    ArrivalClassSpec &analytic = mix.classes[2];
    analytic.workload = "SPMV";
    analytic.input = InputClass::Large;
    analytic.priority = kInteractivePrio;
    analytic.repeats = 1;
    analytic.sloNs =
        static_cast<Tick>(2.5 * predictJobNs(env, analytic));

    mix.weights = {0.15, 0.5, 0.35};
    finishMix(env, mix);
    return mix;
}

ClusterConfig
mixConfig(const BenchEnv &env, const Mix &mix, int devices,
          double load, long target_jobs, std::uint64_t seed)
{
    // Offered load = arrival rate x mean service / devices; solve for
    // the rate that hits the cell's load, then size the arrival
    // window so the expected job count matches target_jobs.
    const double svc_ms = mix.meanServiceNs / 1e6;
    const double rate_per_ms =
        load * static_cast<double>(devices) / svc_ms;

    ClusterArrivalConfig acfg;
    acfg.pattern = ArrivalPattern::Poisson;
    acfg.horizonNs = static_cast<Tick>(
        static_cast<double>(target_jobs) / rate_per_ms * 1e6);
    acfg.seed = seed;
    acfg.classes = mix.classes;
    for (std::size_t i = 0; i < acfg.classes.size(); ++i)
        acfg.classes[i].ratePerMs = mix.weights[i] * rate_per_ms;

    ClusterConfig cfg;
    cfg.gpu = env.gpu();
    cfg.devices = devices;
    cfg.deviceScheduler = SchedulerKind::FlepHpf;
    cfg.deviceCapacity = 1;
    cfg.jobs = generateClusterJobs(acfg);
    cfg.horizonNs = 0; // run to completion: misses come from lateness
    cfg.seed = seed;
    return cfg;
}

CellStats
aggregate(const std::vector<ClusterResult> &reps)
{
    CellStats s;
    for (const auto &res : reps) {
        const ClusterMetrics m = computeClusterMetrics(res);
        auto high = m.sloAttainmentByPriority.find(kInteractivePrio);
        s.sloHigh +=
            high == m.sloAttainmentByPriority.end() ? 1.0 : high->second;
        s.sloAll += m.sloAttainment;
        s.p50QueueUs += m.p50QueueDelayUs;
        s.p99QueueUs += m.p99QueueDelayUs;
        s.meanTurnUs += m.meanTurnaroundUs;
        double util = 0.0;
        for (double u : m.deviceUtilization)
            util += u;
        s.utilization += m.deviceUtilization.empty()
            ? 0.0
            : util / static_cast<double>(m.deviceUtilization.size());
        s.devicePreemptions +=
            static_cast<double>(m.devicePreemptions);
        s.preemptivePlacements +=
            static_cast<double>(m.preemptivePlacements);
        s.predictionErrPct += m.meanAbsPredictionErrorPct;
        s.jobs += m.jobs;
    }
    const auto n = static_cast<double>(reps.size());
    s.sloHigh /= n;
    s.sloAll /= n;
    s.p50QueueUs /= n;
    s.p99QueueUs /= n;
    s.meanTurnUs /= n;
    s.utilization /= n;
    s.devicePreemptions /= n;
    s.preemptivePlacements /= n;
    s.predictionErrPct /= n;
    return s;
}

/** Regroup a flat batch of cell x rep results and aggregate. */
std::vector<CellStats>
aggregateCells(const std::vector<ClusterResult> &results,
               std::size_t cell_count, int reps)
{
    std::vector<CellStats> stats;
    for (std::size_t c = 0; c < cell_count; ++c) {
        std::vector<ClusterResult> cell(
            results.begin() +
                static_cast<long>(c * static_cast<std::size_t>(reps)),
            results.begin() +
                static_cast<long>((c + 1) *
                                  static_cast<std::size_t>(reps)));
        stats.push_back(aggregate(cell));
    }
    return stats;
}

int
run()
{
    benchutil::printHeader(
        "cluster-policies",
        "placement x load and prediction-source x load: SLO "
        "attainment");

    BenchEnv env;
    const long target_jobs = envLong("FLEP_CLUSTER_JOBS", 40, 4, 4000);
    const Mix placement_mix = buildPlacementMix(env);
    const Mix prediction_mix = buildPredictionMix(env);

    const std::vector<int> device_counts = {1, 2, 4};
    const std::vector<double> loads = {0.5, 0.9, 1.2};
    const std::vector<double> prediction_loads = {0.9, 1.2};

    std::vector<Cell> cells;
    for (PlacementKind placement : allPlacementKinds()) {
        for (int devices : device_counts) {
            for (double load : loads)
                cells.push_back({placement, devices, load});
        }
    }
    std::vector<PredictionCell> pcells;
    for (PredictionSource source : allPredictionSources()) {
        for (double load : prediction_loads)
            pcells.push_back({source, load});
    }

    // One flat batch over (both sweeps) x reps, regrouped afterwards,
    // so the pool sees every run at once.
    std::vector<ClusterConfig> runs;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        for (int r = 0; r < env.reps(); ++r) {
            const std::uint64_t seed =
                42 + static_cast<std::uint64_t>(c) * 101 +
                static_cast<std::uint64_t>(r) * 7919;
            ClusterConfig cfg =
                mixConfig(env, placement_mix, cells[c].devices,
                          cells[c].load, target_jobs, seed);
            cfg.placement = cells[c].placement;
            runs.push_back(std::move(cfg));
        }
    }
    for (std::size_t c = 0; c < pcells.size(); ++c) {
        for (int r = 0; r < env.reps(); ++r) {
            // Same seed across sources: every source schedules the
            // identical arrival trace, isolating the estimator.
            const std::uint64_t seed =
                91 + static_cast<std::uint64_t>(c % 2) * 131 +
                static_cast<std::uint64_t>(r) * 7919;
            ClusterConfig cfg = mixConfig(
                env, prediction_mix, 2, pcells[c].load, target_jobs,
                seed);
            cfg.placement = PlacementKind::PreemptivePriority;
            cfg.prediction = pcells[c].source;
            cfg.deviceCapacity = 3;
            runs.push_back(std::move(cfg));
        }
    }
    const std::vector<ClusterResult> results =
        env.runClusterBatch(runs);

    const std::vector<ClusterResult> placement_results(
        results.begin(),
        results.begin() +
            static_cast<long>(cells.size() *
                              static_cast<std::size_t>(env.reps())));
    const std::vector<ClusterResult> prediction_results(
        results.begin() +
            static_cast<long>(cells.size() *
                              static_cast<std::size_t>(env.reps())),
        results.end());
    const std::vector<CellStats> stats =
        aggregateCells(placement_results, cells.size(), env.reps());
    const std::vector<CellStats> pstats =
        aggregateCells(prediction_results, pcells.size(), env.reps());

    Table table("cluster placement sweep");
    table.setHeader({"policy", "devices", "load", "slo-high",
                     "slo-all", "p99-queue-us", "util",
                     "preemptions"});
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const CellStats &s = stats[c];
        table.addRow({placementKindName(cell.placement),
                      std::to_string(cell.devices),
                      format("%.1f", cell.load),
                      format("%.3f", s.sloHigh),
                      format("%.3f", s.sloAll),
                      format("%.1f", s.p99QueueUs),
                      format("%.3f", s.utilization),
                      format("%.1f", s.devicePreemptions)});
    }
    table.print();

    Table ptable("prediction-source sweep (preemptive-priority, "
                 "2 devices, capacity 3)");
    ptable.setHeader({"prediction", "load", "slo-high", "slo-all",
                      "p99-queue-us", "pred-err-%", "preemptions"});
    for (std::size_t c = 0; c < pcells.size(); ++c) {
        const PredictionCell &cell = pcells[c];
        const CellStats &s = pstats[c];
        ptable.addRow({predictionSourceName(cell.source),
                       format("%.1f", cell.load),
                       format("%.3f", s.sloHigh),
                       format("%.3f", s.sloAll),
                       format("%.1f", s.p99QueueUs),
                       format("%.1f", s.predictionErrPct),
                       format("%.1f", s.devicePreemptions)});
    }
    ptable.print();
    benchutil::printPaperNote(
        "no paper counterpart: FLEP (ASPLOS'17) is single-GPU; this "
        "sweep shows its preemption enabling SLURM-style preemptive "
        "cluster placement, with §4.2's models driving the demand "
        "estimates");

    const char *out = std::getenv("FLEP_CLUSTER_OUT");
    const char *path = out != nullptr ? out : "BENCH_cluster.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write ", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 2,\n"
                 "  \"reps\": %d,\n"
                 "  \"target_jobs\": %ld,\n"
                 "  \"interactive_slo_ns\": %llu,\n"
                 "  \"cells\": [\n",
                 env.reps(), target_jobs,
                 static_cast<unsigned long long>(
                     placement_mix.classes[1].sloNs));
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const CellStats &s = stats[c];
        std::fprintf(
            f,
            "    {\"policy\": \"%s\", \"devices\": %d, "
            "\"load\": %.2f, \"jobs\": %zu, "
            "\"slo_attainment_high\": %.6f, "
            "\"slo_attainment\": %.6f, "
            "\"p50_queue_us\": %.3f, \"p99_queue_us\": %.3f, "
            "\"mean_turnaround_us\": %.3f, "
            "\"utilization\": %.6f, "
            "\"device_preemptions\": %.2f, "
            "\"preemptive_placements\": %.2f}%s\n",
            placementKindName(cell.placement), cell.devices, cell.load,
            s.jobs, s.sloHigh, s.sloAll, s.p50QueueUs, s.p99QueueUs,
            s.meanTurnUs, s.utilization, s.devicePreemptions,
            s.preemptivePlacements,
            c + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"prediction_cells\": [\n");
    for (std::size_t c = 0; c < pcells.size(); ++c) {
        const PredictionCell &cell = pcells[c];
        const CellStats &s = pstats[c];
        std::fprintf(
            f,
            "    {\"prediction\": \"%s\", \"load\": %.2f, "
            "\"jobs\": %zu, "
            "\"slo_attainment_high\": %.6f, "
            "\"slo_attainment\": %.6f, "
            "\"p50_queue_us\": %.3f, \"p99_queue_us\": %.3f, "
            "\"mean_turnaround_us\": %.3f, "
            "\"utilization\": %.6f, "
            "\"device_preemptions\": %.2f, "
            "\"preemptive_placements\": %.2f, "
            "\"mean_abs_prediction_error_pct\": %.3f}%s\n",
            predictionSourceName(cell.source), cell.load, s.jobs,
            s.sloHigh, s.sloAll, s.p50QueueUs, s.p99QueueUs,
            s.meanTurnUs, s.utilization, s.devicePreemptions,
            s.preemptivePlacements, s.predictionErrPct,
            c + 1 < pcells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    inform("wrote ", path);
    return 0;
}

} // namespace
} // namespace flep

int
main()
{
    return flep::run();
}
