/**
 * @file
 * Benchmark workload models.
 *
 * The paper evaluates FLEP on eight CUDA benchmarks (Table 1). A real
 * GPU is unavailable here, so each benchmark is modelled at the task
 * level: its launch geometry, per-CTA hardware footprint, and a
 * stochastic per-task cost calibrated so that solo execution times on
 * the three canonical inputs land near Table 1. Input *content*
 * effects that the paper's regression features cannot see (SPMV's
 * non-zero distribution, MD's neighbour lists) are modelled as a
 * hidden per-input cost factor, which is what makes the Figure 7
 * prediction errors non-trivial.
 */

#ifndef FLEP_WORKLOAD_WORKLOAD_HH
#define FLEP_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.hh"
#include "gpu/kernel.hh"

namespace flep
{

/** The three canonical input sizes of Table 1. */
enum class InputClass
{
    Large,  //!< long-running, fills the whole GPU
    Small,  //!< short-running, still fills the whole GPU
    Trivial //!< a handful of CTAs, needs only a few SMs
};

/** Human-readable class name. */
const char *inputClassName(InputClass c);

/**
 * One concrete input for one benchmark: everything needed to build a
 * kernel launch plus the features the performance model may use.
 */
struct InputSpec
{
    /** Task count = original-form grid size (CTA count). */
    long totalTasks = 0;

    /** Per-CTA resource demand. */
    CtaFootprint footprint;

    /** Mean base cost of one task, hidden factor already applied. */
    double taskMeanNs = 1000.0;

    /** Per-task cost dispersion. */
    double taskCv = 0.0;

    /**
     * Input size feature (notionally elements processed); visible to
     * the performance model.
     */
    double inputSize = 0.0;

    /**
     * Cost multiplier from input content, invisible to the model
     * features. 1.0 for the canonical inputs.
     */
    double hiddenFactor = 1.0;
};

/**
 * A benchmark workload: metadata from Table 1 plus the cost model.
 * Concrete benchmarks (workload/cfd.hh etc.) supply the parameters.
 */
class Workload
{
  public:
    /** Everything that defines one benchmark's model. */
    struct Params
    {
        std::string name;
        std::string source;      //!< benchmark suite of origin
        std::string description; //!< Table 1 description column
        int kernelLoc = 0;       //!< lines of code in the kernel
        int paperAmortizeL = 1;  //!< Table 1 amortizing factor
        double contentionBeta = 0.05;
        CtaFootprint footprint;

        long largeTasks = 1000;
        double largeTaskNs = 1000.0;
        long smallTasks = 100;
        double smallTaskNs = 1000.0;
        long trivialCtas = 32;
        double trivialTaskNs = 50000.0;

        double taskCv = 0.1;   //!< per-task cost dispersion
        double hiddenCv = 0.05; //!< per-input hidden factor dispersion
        double sizeExponent = 0.0; //!< task cost ~ size^exponent drift
    };

    explicit Workload(Params params);
    virtual ~Workload();

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    const std::string &name() const { return params_.name; }
    const std::string &source() const { return params_.source; }
    const std::string &description() const { return params_.description; }
    int kernelLoc() const { return params_.kernelLoc; }
    int paperAmortizeL() const { return params_.paperAmortizeL; }
    double contentionBeta() const { return params_.contentionBeta; }
    const CtaFootprint &footprint() const { return params_.footprint; }
    const Params &params() const { return params_; }

    /** Canonical input of the given class (hidden factor = 1). */
    InputSpec input(InputClass c) const;

    /**
     * Random input for performance-model training/testing: task count
     * log-uniform between roughly the trivial and 1.2x the large
     * scale, with a sampled hidden cost factor.
     */
    InputSpec randomInput(Rng &rng) const;

    /**
     * Build a launch descriptor for this benchmark on an input.
     * @param mode Original (untransformed) or Persistent (FLEP form)
     * @param amortize_l the amortizing factor L for Persistent mode
     * @param process owning host process id
     */
    KernelLaunchDesc makeLaunch(const InputSpec &in, ExecMode mode,
                                int amortize_l, ProcessId process) const;

  private:
    double taskMeanForScale(double scale) const;

    Params params_;
};

/** Owning pointer alias used by the suite registry. */
using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace flep

#endif // FLEP_WORKLOAD_WORKLOAD_HH
