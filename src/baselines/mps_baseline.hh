/**
 * @file
 * The default co-run baseline: plain MPS.
 *
 * Unmodified programs launch their kernels directly; concurrency is
 * whatever the hardware FIFO CTA scheduler provides (younger kernels
 * use leftover resources only after older ones fully dispatch). This
 * is the paper's baseline for every co-run experiment.
 */

#ifndef FLEP_BASELINES_MPS_BASELINE_HH
#define FLEP_BASELINES_MPS_BASELINE_HH

#include "runtime/dispatcher.hh"

namespace flep
{

/** Pass-through dispatcher: every invocation launches immediately. */
class MpsDispatcher : public KernelDispatcher
{
  public:
    const char *schedulerName() const override { return "MPS"; }
    ExecMode execMode() const override { return ExecMode::Original; }
    Tick ipcLatency() const override { return 0; }

    void onInvoke(HostProcess &host) override;
    void onFinished(HostProcess &host) override;
};

} // namespace flep

#endif // FLEP_BASELINES_MPS_BASELINE_HH
