#include "workload/kernel_sources.hh"

#include "common/logging.hh"

namespace flep
{

namespace
{

// CFD (Rodinia): unstructured finite-volume flux accumulation. The
// real kernel is ~130 lines; this rendition keeps its structure: per
// cell, gather four neighbour states, compute fluxes, accumulate.
const char *cfd_src = R"(
__device__ float cfdFlux(float rho_a, float rho_b, float mom_a,
                         float mom_b, float p_a, float p_b)
{
    float avg_rho = 0.5f * (rho_a + rho_b);
    float avg_mom = 0.5f * (mom_a + mom_b);
    float avg_p = 0.5f * (p_a + p_b);
    float vel = avg_mom / avg_rho;
    float flux = avg_mom * vel + avg_p;
    if (flux < 0.0f)
        flux = flux * 0.98f;
    return flux;
}

__global__ void cfdStep(const float *rho, const float *momentum,
                        const float *pressure, const int *neighbors,
                        float *rho_out, float *mom_out, int ncells)
{
    int cell = blockIdx.x * blockDim.x + threadIdx.x;
    if (cell >= ncells)
        return;
    float my_rho = rho[cell];
    float my_mom = momentum[cell];
    float my_p = pressure[cell];
    float acc_rho = 0.0f;
    float acc_mom = 0.0f;
    for (int face = 0; face < 4; face++) {
        int nb = neighbors[cell * 4 + face];
        if (nb < 0)
            continue;
        float nb_rho = rho[nb];
        float nb_mom = momentum[nb];
        float nb_p = pressure[nb];
        float f = cfdFlux(my_rho, nb_rho, my_mom, nb_mom, my_p, nb_p);
        acc_rho += 0.25f * (nb_rho - my_rho);
        acc_mom += 0.25f * f;
    }
    rho_out[cell] = my_rho + 0.1f * acc_rho;
    mom_out[cell] = my_mom - 0.1f * acc_mom;
}

void cfdHost(const float *rho, const float *momentum,
             const float *pressure, const int *neighbors,
             float *rho_out, float *mom_out, int ncells)
{
    cfdStep<<<(ncells + 255) / 256, 256>>>(rho, momentum, pressure,
                                           neighbors, rho_out, mom_out,
                                           ncells);
}
)";

// NN (Rodinia): brute-force nearest neighbour distance computation —
// the paper's 10-line kernel.
const char *nn_src = R"(
__global__ void nnDistance(const float *lat, const float *lng,
                           float *dist, float qlat, float qlng, int n)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float dx = lat[i] - qlat;
        float dy = lng[i] - qlng;
        dist[i] = sqrtf(dx * dx + dy * dy);
    }
}

void nnHost(const float *lat, const float *lng, float *dist,
            float qlat, float qlng, int n)
{
    nnDistance<<<(n + 255) / 256, 256>>>(lat, lng, dist, qlat, qlng,
                                         n);
}
)";

// PF (Rodinia pathfinder): one dynamic-programming relaxation step
// over a row of the grid, staged through shared memory.
const char *pf_src = R"(
__global__ void pathfinderStep(const int *wall, const int *src,
                               int *dst, int cols)
{
    __shared__ int prev[258];
    int tx = threadIdx.x;
    int col = blockIdx.x * blockDim.x + tx;
    if (col < cols)
        prev[tx + 1] = src[col];
    if (tx == 0) {
        if (col > 0)
            prev[0] = src[col - 1];
        else
            prev[0] = src[col];
    }
    if (tx == blockDim.x - 1) {
        if (col + 1 < cols)
            prev[tx + 2] = src[col + 1];
        else
            prev[tx + 2] = src[col];
    }
    __syncthreads();
    if (col < cols) {
        int best = prev[tx + 1];
        int left = prev[tx];
        int right = prev[tx + 2];
        if (left < best)
            best = left;
        if (right < best)
            best = right;
        dst[col] = wall[col] + best;
    }
}

void pathfinderHost(const int *wall, const int *src, int *dst,
                    int cols)
{
    pathfinderStep<<<(cols + 255) / 256, 256>>>(wall, src, dst, cols);
}
)";

// PL (Rodinia particle filter): likelihood evaluation and weight
// update of a particle block (Bayesian framework).
const char *pl_src = R"(
__global__ void particleWeights(const float *px, const float *py,
                                float *weights, float obs_x,
                                float obs_y, int nparticles)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= nparticles)
        return;
    float dx = px[i] - obs_x;
    float dy = py[i] - obs_y;
    float dist2 = dx * dx + dy * dy;
    float likelihood = expf(-0.5f * dist2);
    weights[i] = weights[i] * likelihood + 0.0001f;
}

void particleHost(const float *px, const float *py, float *weights,
                  float obs_x, float obs_y, int nparticles)
{
    particleWeights<<<(nparticles + 255) / 256, 256>>>(
        px, py, weights, obs_x, obs_y, nparticles);
}
)";

// MD (SHOC): truncated Lennard-Jones force over per-atom neighbour
// lists.
const char *md_src = R"(
__global__ void mdForces(const float *pos, const int *neighbors,
                         float *force, int natoms, int maxneigh)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= natoms)
        return;
    float xi = pos[i];
    float acc = 0.0f;
    for (int j = 0; j < maxneigh; j++) {
        int nb = neighbors[i * maxneigh + j];
        if (nb < 0)
            continue;
        float r = pos[nb] - xi;
        float r2 = r * r + 0.01f;
        float inv2 = 1.0f / r2;
        float inv6 = inv2 * inv2 * inv2;
        float lj = inv6 * (inv6 - 0.5f);
        acc += lj * r;
    }
    force[i] = acc;
}

void mdHost(const float *pos, const int *neighbors, float *force,
            int natoms, int maxneigh)
{
    mdForces<<<(natoms + 255) / 256, 256>>>(pos, neighbors, force,
                                            natoms, maxneigh);
}
)";

// SPMV (SHOC): CSR sparse matrix-vector multiply; the row-length
// distribution drives the input sensitivity Figure 7 exposes.
const char *spmv_src = R"(
__global__ void spmvCsr(const float *vals, const int *cols,
                        const int *row_ptr, const float *x, float *y,
                        int nrows)
{
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row >= nrows)
        return;
    float acc = 0.0f;
    int begin = row_ptr[row];
    int end = row_ptr[row + 1];
    for (int k = begin; k < end; k++) {
        acc += vals[k] * x[cols[k]];
    }
    y[row] = acc;
}

void spmvHost(const float *vals, const int *cols, const int *row_ptr,
              const float *x, float *y, int nrows)
{
    spmvCsr<<<(nrows + 255) / 256, 256>>>(vals, cols, row_ptr, x, y,
                                          nrows);
}
)";

// MM (CUDA SDK): tiled dense matrix multiply with shared-memory
// staging.
const char *mm_src = R"(
__global__ void matMul(const float *a, const float *b, float *c,
                       int n)
{
    __shared__ float tile_a[16][16];
    __shared__ float tile_b[16][16];
    int tx = threadIdx.x % 16;
    int ty = threadIdx.x / 16;
    int row = blockIdx.x / (n / 16) * 16 + ty;
    int col = blockIdx.x % (n / 16) * 16 + tx;
    float acc = 0.0f;
    for (int t = 0; t < n / 16; t++) {
        tile_a[ty][tx] = a[row * n + t * 16 + tx];
        tile_b[ty][tx] = b[(t * 16 + ty) * n + col];
        __syncthreads();
        for (int k = 0; k < 16; k++) {
            acc += tile_a[ty][k] * tile_b[k][tx];
        }
        __syncthreads();
    }
    c[row * n + col] = acc;
}

void matMulHost(const float *a, const float *b, float *c, int n)
{
    matMul<<<(n / 16) * (n / 16), 256>>>(a, b, c, n);
}
)";

// VA (CUDA SDK): the 6-line vector addition of Table 1.
const char *va_src = R"(
__global__ void vecAdd(const float *a, const float *b, float *c,
                       int n)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n)
        c[i] = a[i] + b[i];
}

void vecAddHost(const float *a, const float *b, float *c, int n)
{
    vecAdd<<<(n + 255) / 256, 256>>>(a, b, c, n);
}
)";

std::vector<KernelSource>
buildSources()
{
    return {
        {"CFD", "cfdStep", cfd_src},
        {"NN", "nnDistance", nn_src},
        {"PF", "pathfinderStep", pf_src},
        {"PL", "particleWeights", pl_src},
        {"MD", "mdForces", md_src},
        {"SPMV", "spmvCsr", spmv_src},
        {"MM", "matMul", mm_src},
        {"VA", "vecAdd", va_src},
    };
}

} // namespace

const std::vector<KernelSource> &
allKernelSources()
{
    static const std::vector<KernelSource> sources = buildSources();
    return sources;
}

const KernelSource &
benchmarkKernelSource(const std::string &name)
{
    for (const auto &src : allKernelSources()) {
        if (src.benchmark == name)
            return src;
    }
    fatal("no kernel source for benchmark: ", name);
}

} // namespace flep
