/**
 * @file
 * fleptrace — replay a co-run under the event recorder and dump its
 * timeline.
 *
 * Builds a CoRunConfig from the command line, runs it once with a
 * TraceRecorder attached, prints a human-readable timeline plus a
 * summary, and writes the full Chrome trace-event JSON for Perfetto /
 * chrome://tracing.
 *
 * Usage:
 *   fleptrace [options] [KERNEL...]
 *
 * Each KERNEL is NAME[:input[:priority[:delay-us[:repeats]]]], e.g.
 *   VA:large:0            a low-priority VA on the large input
 *   MM:small:5:1000       high-priority MM arriving after 1 ms
 *   NN:small:2:0:-1       NN re-invoked forever (needs --horizon-ms)
 *
 * Options:
 *   --scheduler=hpf|ffs|mps|reorder|slicing   (default hpf)
 *   --spatial            enable HPF's spatial preemption path
 *   --horizon-ms=<N>     stop time for infinite workloads
 *   --seed=<N>           simulation seed (default 1)
 *   --out=<file>         trace path (default fleptrace.json; a
 *                        .flepbin suffix selects the binary format)
 *   --stream             stream a .flepbin --out incrementally while
 *                        replaying (spills completed record blocks;
 *                        the file is byte-identical either way)
 *   --bin-out=<file>     additionally write the binary trace
 *   --to-json=<in>       convert an existing .flepbin to Chrome JSON
 *                        (written to --out) and exit; no replay
 *   --counters           include counter samples in the text timeline
 *   --max-lines=<N>      cap on printed timeline lines (default 200)
 *   --list-workloads     list the benchmark suite and exit
 *
 * With no KERNEL arguments a demo pair is replayed: a long
 * low-priority VA preempted by a high-priority MM arriving at 1 ms.
 */

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "flep/experiment.hh"
#include "obs/trace_recorder.hh"

namespace
{

using namespace flep;

struct Options
{
    CoRunConfig cfg;
    std::string out = "fleptrace.json";
    std::string bin_out;
    std::string to_json;
    bool stream = false;
    bool counters = false;
    bool list = false;
    long max_lines = 200;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: fleptrace [options] [KERNEL...]\n"
        "  KERNEL = NAME[:input[:priority[:delay-us[:repeats]]]]\n"
        "           input: large|small|trivial (default large)\n"
        "           repeats: -1 repeats forever (needs --horizon-ms)\n"
        "options:\n"
        "  --scheduler=hpf|ffs|mps|reorder|slicing  (default hpf)\n"
        "  --spatial            enable HPF spatial preemption\n"
        "  --horizon-ms=<N>     stop time for infinite workloads\n"
        "  --seed=<N>           simulation seed (default 1)\n"
        "  --out=<file>         trace path (fleptrace.json; .flepbin\n"
        "                       suffix selects the binary format)\n"
        "  --stream             stream a .flepbin --out incrementally\n"
        "                       while replaying\n"
        "  --bin-out=<file>     additionally write the binary trace\n"
        "  --to-json=<in>       convert a .flepbin to Chrome JSON at\n"
        "                       --out and exit\n"
        "  --counters           include counters in the timeline\n"
        "  --max-lines=<N>      printed timeline cap (default 200)\n"
        "  --list-workloads     list the benchmark suite\n"
        "default kernels: VA:large:0 MM:small:5:1000\n");
    std::exit(code);
}

long
parseLong(const std::string &text, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "fleptrace: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

InputClass
parseInput(std::string text)
{
    for (auto &c : text)
        c = static_cast<char>(std::tolower(c));
    if (text == "large")
        return InputClass::Large;
    if (text == "small")
        return InputClass::Small;
    if (text == "trivial")
        return InputClass::Trivial;
    std::fprintf(stderr, "fleptrace: bad input class '%s'\n",
                 text.c_str());
    std::exit(2);
}

SchedulerKind
parseScheduler(const std::string &text)
{
    SchedulerKind kind;
    if (parseSchedulerKind(text, kind))
        return kind;
    std::string valid;
    for (SchedulerKind k : allSchedulerKinds()) {
        if (!valid.empty())
            valid += ", ";
        valid += schedulerKindName(k);
    }
    std::fprintf(stderr,
                 "fleptrace: unknown scheduler '%s' (valid: %s; "
                 "aliases hpf, ffs)\n",
                 text.c_str(), valid.c_str());
    std::exit(2);
}

KernelSpec
parseKernel(const std::string &arg)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = arg.find(':', start);
        parts.push_back(arg.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    if (parts.empty() || parts.front().empty() || parts.size() > 5)
        usage(2);
    KernelSpec spec;
    spec.workload = parts[0];
    if (parts.size() > 1)
        spec.input = parseInput(parts[1]);
    if (parts.size() > 2)
        spec.priority =
            static_cast<Priority>(parseLong(parts[2], "priority"));
    if (parts.size() > 3) {
        spec.invokeDelayNs = static_cast<Tick>(
            parseLong(parts[3], "delay-us") * ticksPerUs);
    }
    if (parts.size() > 4)
        spec.repeats = static_cast<int>(parseLong(parts[4], "repeats"));
    return spec;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    opts.cfg.scheduler = SchedulerKind::FlepHpf;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (startsWith(arg, "--scheduler=")) {
            opts.cfg.scheduler = parseScheduler(arg.substr(12));
        } else if (arg == "--spatial") {
            opts.cfg.hpf.enableSpatial = true;
        } else if (startsWith(arg, "--horizon-ms=")) {
            opts.cfg.horizonNs = static_cast<Tick>(
                parseLong(arg.substr(13), "horizon") * ticksPerMs);
        } else if (startsWith(arg, "--seed=")) {
            opts.cfg.seed = static_cast<std::uint64_t>(
                parseLong(arg.substr(7), "seed"));
        } else if (startsWith(arg, "--out=")) {
            opts.out = arg.substr(6);
        } else if (arg == "--stream") {
            opts.stream = true;
        } else if (startsWith(arg, "--bin-out=")) {
            opts.bin_out = arg.substr(10);
        } else if (startsWith(arg, "--to-json=")) {
            opts.to_json = arg.substr(10);
        } else if (startsWith(arg, "--backend=")) {
            // The record-time-formatting backend was retired; the
            // binary recorder is the only backend. Accept the old
            // spelling for scripts, reject anything else.
            if (arg.substr(10) != "binary") {
                std::fprintf(stderr,
                             "fleptrace: the '%s' backend was "
                             "removed; only 'binary' remains\n",
                             arg.substr(10).c_str());
                std::exit(2);
            }
        } else if (arg == "--counters") {
            opts.counters = true;
        } else if (startsWith(arg, "--max-lines=")) {
            opts.max_lines = parseLong(arg.substr(12), "max-lines");
        } else if (arg == "--list-workloads") {
            opts.list = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(2);
        } else {
            opts.cfg.kernels.push_back(parseKernel(arg));
        }
    }
    if (opts.cfg.kernels.empty()) {
        opts.cfg.kernels = {
            {"VA", InputClass::Large, 0, 0, 1},
            {"MM", InputClass::Small, 5, 1000 * ticksPerUs, 1}};
    }
    return opts;
}

/** Human-readable track label for an event's (pid, tid). */
std::string
trackName(const TraceEvent &ev)
{
    if (ev.pid == TraceRecorder::pidGpu)
        return format("gpu/sm%02d", ev.tid);
    if (ev.pid == TraceRecorder::pidRuntime)
        return "runtime";
    if (ev.pid >= TraceRecorder::pidHostBase)
        return format("host%d", ev.pid - TraceRecorder::pidHostBase);
    return format("pid%d", ev.pid);
}

void
printTimeline(const TraceRecorder &tr, const Options &opts)
{
    std::printf("%12s  %-10s %-3s %s\n", "time(us)", "track", "ph",
                "event");
    long printed = 0;
    long skipped = 0;
    for (const auto &ev : tr.events()) {
        if (ev.ph == 'C' && !opts.counters)
            continue;
        if (printed >= opts.max_lines) {
            ++skipped;
            continue;
        }
        ++printed;
        std::string detail = ev.name;
        if (ev.ph == 'C')
            detail += format(" = %g", ev.value);
        else if (!ev.args.empty())
            detail += " {" + ev.args + "}";
        std::printf("%12.3f  %-10s %-3c %s\n", ticksToUs(ev.ts),
                    trackName(ev).c_str(), ev.ph, detail.c_str());
    }
    if (skipped > 0) {
        std::printf("... %ld more lines (raise --max-lines or open "
                    "the JSON in Perfetto)\n",
                    skipped);
    }
}

void
printSummary(const CoRunConfig &cfg, const CoRunResult &res,
             const TraceRecorder &tr)
{
    std::printf("\nscheduler %s, seed %llu: %zu invocations, "
                "makespan %.1f us, %ld preemptions, %zu trace events\n",
                schedulerKindName(cfg.scheduler),
                static_cast<unsigned long long>(cfg.seed),
                res.invocations.size(), ticksToUs(res.makespanNs),
                res.preemptions, tr.eventCount());
    for (std::size_t i = 0; i < cfg.kernels.size(); ++i) {
        const auto pid = static_cast<ProcessId>(i);
        const auto turnarounds = res.turnaroundsOf(pid);
        double mean_us = 0.0;
        for (Tick t : turnarounds)
            mean_us += ticksToUs(t);
        if (!turnarounds.empty())
            mean_us /= static_cast<double>(turnarounds.size());
        std::printf("  host%zu %s(%s, prio %d): %zu done, mean "
                    "turnaround %.1f us\n",
                    i, cfg.kernels[i].workload.c_str(),
                    inputClassName(cfg.kernels[i].input),
                    cfg.kernels[i].priority, turnarounds.size(),
                    mean_us);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    try {
        if (!opts.to_json.empty()) {
            // Conversion mode: no replay, just decode and re-emit.
            TraceRecorder tr;
            if (!tr.readBinFile(opts.to_json)) {
                std::fprintf(stderr, "fleptrace: cannot read %s\n",
                             opts.to_json.c_str());
                return 1;
            }
            if (!writeTraceFile(tr, opts.out)) {
                std::fprintf(stderr, "fleptrace: cannot write %s\n",
                             opts.out.c_str());
                return 1;
            }
            std::printf("converted %s (%zu events) to %s\n",
                        opts.to_json.c_str(), tr.eventCount(),
                        opts.out.c_str());
            return 0;
        }

        BenchmarkSuite suite;
        if (opts.list) {
            for (const auto &name : suite.names())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        for (const auto &spec : opts.cfg.kernels) {
            if (!suite.has(spec.workload)) {
                std::fprintf(stderr,
                             "fleptrace: unknown workload '%s' "
                             "(--list-workloads)\n",
                             spec.workload.c_str());
                return 2;
            }
            if (spec.repeats < 0 && opts.cfg.horizonNs == 0) {
                std::fprintf(stderr,
                             "fleptrace: infinite repeats need "
                             "--horizon-ms\n");
                return 2;
            }
        }

        inform("training offline artifacts (cached per process)");
        const OfflineArtifacts &artifacts =
            defaultArtifacts(suite, opts.cfg.gpu);

        TraceRecorder tr;
        CoRunConfig cfg = opts.cfg;
        cfg.tracer = &tr;
        if (opts.stream) {
            if (!TraceRecorder::looksLikeBinPath(opts.out)) {
                std::fprintf(stderr, "fleptrace: --stream needs a "
                                     ".flepbin --out path\n");
                return 2;
            }
            cfg.tracePath = opts.out;
            cfg.streamTrace = true;
        }
        const CoRunResult res = runCoRun(suite, artifacts, cfg);

        printTimeline(tr, opts);
        printSummary(cfg, res, tr);

        // With --stream, runCoRun already composed the file when it
        // finished the stream; rewriting from the recorder would
        // replace it with only the resident window.
        if (!opts.stream && !writeTraceFile(tr, opts.out)) {
            std::fprintf(stderr, "fleptrace: cannot write %s\n",
                         opts.out.c_str());
            return 1;
        }
        if (!opts.bin_out.empty() && !tr.writeBinFile(opts.bin_out)) {
            std::fprintf(stderr, "fleptrace: cannot write %s\n",
                         opts.bin_out.c_str());
            return 1;
        }
        std::printf("wrote %s (load in https://ui.perfetto.dev or "
                    "chrome://tracing)\n",
                    opts.out.c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fleptrace: %s\n", e.what());
        return 1;
    }
}
