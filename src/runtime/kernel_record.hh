/**
 * @file
 * Per-invocation bookkeeping of the FLEP runtime (paper §5.1).
 *
 * When a kernel is invoked, the runtime creates a triplet: predicted
 * duration T_e, waiting time T_w, and predicted remaining execution
 * time T_r. T_w accumulates whenever the kernel is active but not on
 * the GPU; T_r decreases while it runs; T_e never changes after
 * initialization. Updates happen at the three paper-defined events:
 * kernel arrival, kernel preemption, and kernel completion.
 */

#ifndef FLEP_RUNTIME_KERNEL_RECORD_HH
#define FLEP_RUNTIME_KERNEL_RECORD_HH

#include <string>

#include "common/types.hh"

namespace flep
{

class HostProcess;

/** Execution status of one tracked kernel invocation. */
class KernelRecord
{
  public:
    /** Lifecycle states seen by the runtime. */
    enum class State
    {
        Waiting,  //!< active but not on the GPU (T_w accumulating)
        Running,  //!< on the GPU (T_r decreasing)
        Draining, //!< preempt signalled, CTAs finishing their chunks
        Guest,    //!< running on spatially yielded SMs
        Finished  //!< completed
    };

    /**
     * @param host owning host process (may be null in unit tests that
     *        exercise pure policy logic)
     * @param process owning process id
     * @param kernel kernel name
     * @param priority scheduling priority (higher wins)
     * @param predicted_ns model-predicted duration T_e
     * @param now arrival time
     */
    KernelRecord(HostProcess *host, ProcessId process,
                 std::string kernel, Priority priority,
                 Tick predicted_ns, Tick now);

    /** Owning host process. @pre constructed with a host. */
    HostProcess &host();

    /** Owning process id. */
    ProcessId process() const { return process_; }
    const std::string &kernel() const { return kernel_; }
    Priority priority() const { return priority_; }

    /** Predicted duration; fixed at arrival. */
    Tick te() const { return te_; }

    /** Accumulated waiting time (as of the last touch). */
    Tick tw() const { return tw_; }

    /** Predicted remaining execution time (as of the last touch). */
    Tick tr() const { return tr_; }

    State state() const { return state_; }
    Tick arrivalTick() const { return arrival_; }

    /**
     * Fold the elapsed interval since the last touch into T_w or T_r
     * according to the current state, then transition to `next`.
     * This is the single mutation point of the triplet.
     */
    void touch(Tick now, State next);

    /** touch() without a state change. */
    void refresh(Tick now) { touch(now, state_); }

    /** Number of times this invocation was preempted off the GPU. */
    int preemptions() const { return preemptions_; }

    /** Count one completed preemption (called at drain). */
    void countPreemption() { ++preemptions_; }

  private:
    static bool onGpu(State s);

    HostProcess *host_;
    ProcessId process_;
    std::string kernel_;
    Priority priority_;
    Tick te_;
    Tick tw_ = 0;
    Tick tr_;
    State state_ = State::Waiting;
    Tick lastTouch_;
    Tick arrival_;
    int preemptions_ = 0;
};

/** Human-readable state name. */
const char *recordStateName(KernelRecord::State s);

} // namespace flep

#endif // FLEP_RUNTIME_KERNEL_RECORD_HH
