/** @file Fuzz property: randomly generated expression trees survive
 *  print -> parse -> print as a fixed point, and randomly generated
 *  kernels survive transform -> print -> parse. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "compiler/parser.hh"
#include "compiler/printer.hh"
#include "compiler/transform.hh"

namespace flep::minicuda
{
namespace
{

/** Random expression generator over a fixed identifier pool. */
class ExprGen
{
  public:
    explicit ExprGen(Rng &rng) : rng_(rng) {}

    ExprPtr
    gen(int depth)
    {
        if (depth <= 0)
            return leaf();
        switch (rng_.uniformInt(0, 7)) {
          case 0:
            return leaf();
          case 1:
            return makeBinary(binOp(), gen(depth - 1),
                              gen(depth - 1));
          case 2:
            return makeUnary(Tok::Minus, gen(depth - 1));
          case 3:
            return makeUnary(Tok::Not, gen(depth - 1));
          case 4: { // index
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Index;
            e->base = makeIdent(pick(arrays_));
            e->index = gen(depth - 1);
            return e;
          }
          case 5: { // call
            std::vector<ExprPtr> args;
            const auto n = rng_.uniformInt(1, 2);
            for (int i = 0; i < n; ++i)
                args.push_back(gen(depth - 1));
            return makeCall(rng_.uniform() < 0.5 ? "min" : "max",
                            std::move(args));
          }
          case 6: { // ternary
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Ternary;
            e->base = gen(depth - 1);
            e->lhs = gen(depth - 1);
            e->rhs = gen(depth - 1);
            return e;
          }
          default: // member builtin
            return makeMember(
                makeIdent(pick(builtins_)), "x");
        }
    }

  private:
    ExprPtr
    leaf()
    {
        switch (rng_.uniformInt(0, 2)) {
          case 0:
            return makeInt(rng_.uniformInt(0, 999));
          case 1: {
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::FloatLit;
            e->floatValue =
                static_cast<double>(rng_.uniformInt(0, 99)) / 4.0;
            return e;
          }
          default:
            return makeIdent(pick(scalars_));
        }
    }

    Tok
    binOp()
    {
        static const Tok ops[] = {Tok::Plus, Tok::Minus, Tok::Star,
                                  Tok::Slash, Tok::Lt, Tok::Gt,
                                  Tok::Le, Tok::Ge, Tok::EqEq,
                                  Tok::NotEq, Tok::AmpAmp,
                                  Tok::PipePipe};
        return ops[rng_.uniformInt(0, 11)];
    }

    template <std::size_t N>
    const char *
    pick(const char *const (&pool)[N])
    {
        return pool[static_cast<std::size_t>(
            rng_.uniformInt(0, static_cast<int>(N) - 1))];
    }

    Rng &rng_;
    static constexpr const char *scalars_[] = {"a", "b", "n", "x"};
    static constexpr const char *arrays_[] = {"buf", "out"};
    static constexpr const char *builtins_[] = {"threadIdx",
                                                "blockDim"};
};

TEST(FuzzRoundTrip, RandomExpressionsPrintParsePrintFixedPoint)
{
    Rng rng(20260704);
    ExprGen gen(rng);
    for (int i = 0; i < 300; ++i) {
        const ExprPtr e = gen.gen(4);
        const std::string once = printExpr(*e);
        ExprPtr reparsed;
        ASSERT_NO_THROW(reparsed = parseExpression(once)) << once;
        EXPECT_EQ(printExpr(*reparsed), once) << "iteration " << i;
    }
}

TEST(FuzzRoundTrip, RandomKernelsTransformAndReparse)
{
    Rng rng(777);
    ExprGen gen(rng);
    for (int i = 0; i < 60; ++i) {
        // Wrap three random expressions into a kernel body.
        std::string body;
        body += "    int t = blockIdx.x * blockDim.x + threadIdx.x;\n";
        for (int s = 0; s < 3; ++s) {
            const ExprPtr e = gen.gen(3);
            body += "    out[t % 64] = " + printExpr(*e) + ";\n";
        }
        const std::string src =
            "__global__ void fuzzed(const float *buf, float *out, "
            "int n, float a, float b, int x)\n{\n" +
            body + "}\n";
        Program prog;
        ASSERT_NO_THROW(prog = parse(src)) << src;
        TransformOptions opts;
        Program out;
        ASSERT_NO_THROW(out = transformProgram(prog, opts)) << src;
        const std::string printed = printProgram(out);
        EXPECT_NO_THROW(parse(printed)) << printed;
        // blockIdx must be gone from the task function.
        EXPECT_EQ(printFunction(*out.find("fuzzed_task"))
                      .find("blockIdx"),
                  std::string::npos);
    }
}

} // namespace
} // namespace flep::minicuda
