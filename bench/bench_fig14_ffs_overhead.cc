/**
 * @file
 * Figure 14: throughput degradation under FFS with max_overhead = 10%.
 *
 * Degradation is measured as lost useful GPU time: each completed
 * invocation contributes its solo duration of useful work; the
 * shortfall of aggregate useful work versus elapsed time is the cost
 * of time-slicing (context-switch overhead + boundary idling).
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "common/stats.hh"

using namespace flep;
using namespace flep::benchutil;

int
main()
{
    BenchEnv env;
    printHeader("Figure 14",
                "throughput degradation with FFS (max_overhead 10%)");

    const Tick horizon = 120 * ticksPerMs;

    Table table("Throughput degradation per co-run pair");
    table.setHeader({"pair high_low", "useful (ms)", "elapsed (ms)",
                     "degradation (%)"});
    SampleStats degradation;
    for (const auto &[low_name, high_name] : priorityPairs()) {
        CoRunConfig cfg;
        cfg.scheduler = SchedulerKind::FlepFfs;
        cfg.ffs.maxOverhead = 0.10;
        cfg.kernels = {{high_name, InputClass::Small, 2, 10000, -1},
                       {low_name, InputClass::Small, 1, 10000, -1}};
        cfg.horizonNs = horizon;
        const auto res = runCoRun(env.suite(), env.artifacts(), cfg);

        const double high_solo =
            env.soloUs(high_name, InputClass::Small);
        const double low_solo =
            env.soloUs(low_name, InputClass::Small);
        const double useful_us =
            static_cast<double>(res.completedOf(0)) * high_solo +
            static_cast<double>(res.completedOf(1)) * low_solo;
        const double elapsed_us = ticksToUs(horizon);
        const double deg =
            (1.0 - useful_us / elapsed_us) * 100.0;
        degradation.add(deg);
        table.row()
            .cell(high_name + "_" + low_name)
            .cell(useful_us / 1000.0, 2)
            .cell(elapsed_us / 1000.0, 2)
            .cell(deg, 1);
    }
    table.print();
    std::printf("mean degradation: %.1f%%  stddev: %.1f%%  "
                "(threshold 10%%)\n",
                degradation.mean(), degradation.stddev());
    printPaperNote("FLEP keeps the performance degradation close to "
                   "the 10% max_overhead threshold with small "
                   "variation across co-runs");
    return 0;
}
