/**
 * @file
 * Fixed-size worker thread pool for fanning out independent
 * simulations (parameter sweeps, repetition batches).
 *
 * The pool is deliberately minimal: tasks are opaque callables, there
 * is no work stealing or priority, and results flow back through
 * std::future. parallelMap() is the intended entry point — it maps an
 * index range through a callable and returns the results in input
 * order, so callers get deterministic output regardless of how the
 * workers interleave.
 *
 * A pool resolved to a single thread executes everything inline in the
 * calling thread, which reproduces serial behaviour exactly (same
 * thread, same order, including any logging interleavings).
 */

#ifndef FLEP_COMMON_THREAD_POOL_HH
#define FLEP_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace flep
{

/**
 * Fixed-size worker pool. Construction spawns the workers; the
 * destructor drains the queue and joins them.
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; <= 0 picks hardwareThreads().
     * A resolved count of 1 spawns no workers: tasks run inline in
     * the submitting thread (exact serial semantics).
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved thread count (>= 1 even when running inline). */
    int size() const { return size_; }

    /** Detected hardware concurrency, always >= 1. */
    static int hardwareThreads();

    /**
     * Queue one task; the future carries its result or exception.
     * With size() == 1 the task runs before submit() returns.
     */
    template <typename Fn, typename R = std::invoke_result_t<Fn &>>
    std::future<R>
    submit(Fn fn)
    {
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> fut = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return fut;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /**
     * Evaluate fn(0) .. fn(n-1) across the pool and return the results
     * in index order. All tasks are run to completion even when some
     * throw; the exception of the lowest-index failure is rethrown
     * (matching what a serial loop would surface first).
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t n, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<R> out;
        out.reserve(n);
        if (workers_.empty() || n <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                out.push_back(fn(i));
            return out;
        }
        std::vector<std::future<R>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            futures.push_back(submit([&fn, i]() { return fn(i); }));
        std::exception_ptr first_error;
        for (auto &f : futures) {
            try {
                out.push_back(f.get());
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);
        return out;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    int size_ = 1;
};

} // namespace flep

#endif // FLEP_COMMON_THREAD_POOL_HH
