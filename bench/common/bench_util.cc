#include "common/bench_util.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "flep/artifact_io.hh"

namespace flep::benchutil
{

namespace
{

int
repsFromEnv()
{
    if (const char *env = std::getenv("FLEP_REPS")) {
        const int reps = std::atoi(env);
        if (reps >= 1)
            return reps;
        warn("ignoring invalid FLEP_REPS='", env, "'");
    }
    return 3;
}

} // namespace

namespace
{

OfflineArtifacts
artifactsFromEnv(const BenchmarkSuite &suite, const GpuConfig &gpu)
{
    const char *path = std::getenv("FLEP_ARTIFACTS");
    if (path == nullptr)
        return defaultArtifacts(suite, gpu);
    if (auto loaded = loadArtifactsFile(path)) {
        inform("loaded offline artifacts from ", path);
        return *loaded;
    }
    OfflineArtifacts art = runOfflinePhase(suite, gpu, 100, 50, 999);
    saveArtifactsFile(art, path);
    inform("saved offline artifacts to ", path);
    return art;
}

} // namespace

BenchEnv::BenchEnv()
    : gpu_(GpuConfig::keplerK40()),
      artifacts_(artifactsFromEnv(suite_, gpu_)),
      reps_(repsFromEnv())
{}

double
BenchEnv::meanTurnaroundUs(const CoRunConfig &cfg, ProcessId pid)
{
    double acc = 0.0;
    for (int r = 0; r < reps_; ++r) {
        CoRunConfig run = cfg;
        run.seed = cfg.seed + static_cast<std::uint64_t>(r) * 7919;
        const auto res = runCoRun(suite_, artifacts_, run);
        const auto turnarounds = res.turnaroundsOf(pid);
        FLEP_ASSERT(!turnarounds.empty(),
                    "process produced no completed invocation");
        acc += ticksToUs(turnarounds.front());
    }
    return acc / reps_;
}

double
BenchEnv::meanMakespanUs(const CoRunConfig &cfg)
{
    double acc = 0.0;
    for (int r = 0; r < reps_; ++r) {
        CoRunConfig run = cfg;
        run.seed = cfg.seed + static_cast<std::uint64_t>(r) * 7919;
        acc += ticksToUs(runCoRun(suite_, artifacts_, run).makespanNs);
    }
    return acc / reps_;
}

double
BenchEnv::meanExecUs(const CoRunConfig &cfg, ProcessId pid)
{
    double acc = 0.0;
    for (int r = 0; r < reps_; ++r) {
        CoRunConfig run = cfg;
        run.seed = cfg.seed + static_cast<std::uint64_t>(r) * 7919;
        const auto res = runCoRun(suite_, artifacts_, run);
        double exec_us = 0.0;
        for (const auto &inv : res.invocations) {
            if (inv.process == pid) {
                exec_us = ticksToUs(inv.execNs);
                break;
            }
        }
        FLEP_ASSERT(exec_us > 0.0, "no execution span recorded");
        acc += exec_us;
    }
    return acc / reps_;
}

double
BenchEnv::soloUs(const std::string &workload, InputClass input)
{
    return soloTurnaroundNs(suite_, gpu_, workload, input, reps_) /
           1000.0;
}

void
printHeader(const std::string &experiment_id, const std::string &what)
{
    std::printf("\n################################################\n");
    std::printf("# %s — %s\n", experiment_id.c_str(), what.c_str());
    std::printf("################################################\n");
}

void
printPaperNote(const std::string &note)
{
    std::printf("paper: %s\n", note.c_str());
}

} // namespace flep::benchutil
