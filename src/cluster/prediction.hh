/**
 * @file
 * Prediction sources for cluster placement scoring.
 *
 * Placement scores devices by *expected completion time*: the
 * device's predicted backlog plus the incoming job's predicted
 * service demand. A PredictionProvider supplies the per-invocation
 * demand estimates that feed both terms. Three sources exist, so the
 * benches can quantify exactly what the trained model buys (Pai et
 * al., arXiv:1406.6037, make the same oracle-vs-predicted-vs-baseline
 * comparison for thread-block scheduling):
 *
 *  - heuristic: a flat per-invocation constant — queue-depth scoring
 *               in disguise, the degenerate behavior the cluster
 *               layer showed before prediction-driven placement.
 *  - trained:   the per-kernel ridge models from the offline phase
 *               (paper §4.2, KernelModel::predictNs), keyed by the
 *               job's workload and input class.
 *  - oracle:    the workload's measured solo duration in its
 *               FLEP-persistent form — a zero-model-error upper
 *               bound on what any predictor can achieve.
 */

#ifndef FLEP_CLUSTER_PREDICTION_HH
#define FLEP_CLUSTER_PREDICTION_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/job.hh"
#include "common/types.hh"

namespace flep
{

struct OfflineArtifacts;
struct GpuConfig;
class BenchmarkSuite;

/** Where placement-scoring demand estimates come from. */
enum class PredictionSource
{
    Heuristic, //!< flat constant per invocation (no model)
    Trained,   //!< offline ridge models (KernelModel::predictNs)
    Oracle     //!< measured solo duration (upper bound)
};

/** Human-readable source name (also the bench/CLI spelling). */
const char *predictionSourceName(PredictionSource source);

/** Every PredictionSource value, in declaration order. */
const std::vector<PredictionSource> &allPredictionSources();

/**
 * Parse a source name back into its value — the inverse of
 * predictionSourceName(), case-insensitive; also accepts the
 * "predicted" alias for Trained (the bench column spelling).
 * @return false on unknown names, leaving `out` untouched.
 */
bool parsePredictionSource(const std::string &name,
                           PredictionSource &out);

/**
 * Supplies per-invocation service-demand estimates for placement
 * scoring. Implementations must be deterministic pure functions of
 * the job's (workload, input) so cluster runs stay reproducible at
 * any thread count.
 */
class PredictionProvider
{
  public:
    virtual ~PredictionProvider();

    /** The provider's source. */
    virtual PredictionSource source() const = 0;

    /** Human-readable name (== predictionSourceName(source())). */
    const char *name() const
    {
        return predictionSourceName(source());
    }

    /** Predicted solo service demand of ONE invocation of `job`. */
    virtual Tick predictInvocationNs(const ClusterJob &job) const = 0;

    /** Whole-job demand: per-invocation demand x repeats. */
    Tick predictJobNs(const ClusterJob &job) const;
};

/**
 * The flat estimate the heuristic source charges per invocation.
 * Matches FlepRuntimeConfig::fallbackPredictNs — the number the
 * runtime itself falls back to when a kernel has no model.
 */
constexpr Tick heuristicDemandNs = 5 * 1000 * 1000;

/**
 * Build a provider of the given source. `suite`, `artifacts` and
 * `gpu` must outlive the provider (Trained reads the artifact models;
 * Oracle measures solo runs of suite workloads on a `gpu`-configured
 * device, memoized process-wide and thread-safely, so parallel
 * cluster batches stay bit-identical).
 *
 * Heterogeneous fleets: when `trained_reference` is non-null and its
 * config differs from `gpu`, the trained source scales its
 * reference-device predictions by the throughput-index ratio
 * reference/device (GpuConfig::throughputIndex()) — the ridge models
 * were fit on the reference device, so a device with half the
 * resident-thread capacity is predicted to take twice as long. The
 * oracle needs no scaling (it measures on `gpu` directly) and the
 * heuristic stays deliberately blind (it is the no-model baseline).
 */
std::unique_ptr<PredictionProvider> makePredictionProvider(
    PredictionSource source, const BenchmarkSuite &suite,
    const OfflineArtifacts &artifacts, const GpuConfig &gpu,
    const GpuConfig *trained_reference = nullptr);

} // namespace flep

#endif // FLEP_CLUSTER_PREDICTION_HH
