#include "compiler/token.hh"

namespace flep::minicuda
{

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "<end>";
      case Tok::Identifier: return "identifier";
      case Tok::IntLiteral: return "integer literal";
      case Tok::FloatLiteral: return "float literal";
      case Tok::KwVoid: return "void";
      case Tok::KwInt: return "int";
      case Tok::KwUnsigned: return "unsigned";
      case Tok::KwFloat: return "float";
      case Tok::KwBool: return "bool";
      case Tok::KwConst: return "const";
      case Tok::KwVolatile: return "volatile";
      case Tok::KwIf: return "if";
      case Tok::KwElse: return "else";
      case Tok::KwFor: return "for";
      case Tok::KwWhile: return "while";
      case Tok::KwReturn: return "return";
      case Tok::KwBreak: return "break";
      case Tok::KwContinue: return "continue";
      case Tok::KwTrue: return "true";
      case Tok::KwFalse: return "false";
      case Tok::KwGlobal: return "__global__";
      case Tok::KwDevice: return "__device__";
      case Tok::KwShared: return "__shared__";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::LBrace: return "{";
      case Tok::RBrace: return "}";
      case Tok::LBracket: return "[";
      case Tok::RBracket: return "]";
      case Tok::Comma: return ",";
      case Tok::Semi: return ";";
      case Tok::Dot: return ".";
      case Tok::Assign: return "=";
      case Tok::PlusAssign: return "+=";
      case Tok::MinusAssign: return "-=";
      case Tok::StarAssign: return "*=";
      case Tok::SlashAssign: return "/=";
      case Tok::Plus: return "+";
      case Tok::Minus: return "-";
      case Tok::Star: return "*";
      case Tok::Slash: return "/";
      case Tok::Percent: return "%";
      case Tok::PlusPlus: return "++";
      case Tok::MinusMinus: return "--";
      case Tok::Lt: return "<";
      case Tok::Gt: return ">";
      case Tok::Le: return "<=";
      case Tok::Ge: return ">=";
      case Tok::EqEq: return "==";
      case Tok::NotEq: return "!=";
      case Tok::AmpAmp: return "&&";
      case Tok::PipePipe: return "||";
      case Tok::Not: return "!";
      case Tok::Amp: return "&";
      case Tok::Question: return "?";
      case Tok::Colon: return ":";
      case Tok::LaunchOpen: return "<<<";
      case Tok::LaunchClose: return ">>>";
    }
    return "<unknown>";
}

} // namespace flep::minicuda
