/**
 * @file
 * Ridge (L2-penalised) linear regression.
 *
 * The paper builds lightweight kernel-specific duration models via
 * linear regression with an L2-norm penalty on four features (§4.2).
 * This is that model: features are standardized, the intercept is
 * unpenalised, and the normal equations are solved directly — the
 * problems are 4-dimensional, so nothing fancier is warranted.
 */

#ifndef FLEP_PERFMODEL_LINREG_HH
#define FLEP_PERFMODEL_LINREG_HH

#include <cstddef>
#include <vector>

namespace flep
{

/** A fitted ridge regression model. */
class RidgeModel
{
  public:
    RidgeModel() = default;

    /** Number of input features the model was fitted on. */
    std::size_t featureCount() const { return scale_.size(); }

    /** True once fit() has produced a model. */
    bool fitted() const { return !scale_.empty(); }

    /** Predict the target for one feature vector. */
    double predict(const std::vector<double> &x) const;

    /** Fitted coefficients in standardized feature space. */
    const std::vector<double> &coefficients() const { return coef_; }

    /** Per-feature means used for standardization. */
    const std::vector<double> &means() const { return mean_; }

    /** Per-feature scales used for standardization. */
    const std::vector<double> &scales() const { return scale_; }

    /** Fitted intercept (in target units). */
    double intercept() const { return intercept_; }

    /**
     * Reconstruct a model from stored parameters (artifact
     * deserialization). All vectors must have equal, non-zero size
     * and strictly positive scales.
     */
    static RidgeModel fromParameters(std::vector<double> coef,
                                     std::vector<double> mean,
                                     std::vector<double> scale,
                                     double intercept);

  private:
    friend RidgeModel ridgeFit(const std::vector<std::vector<double>> &,
                               const std::vector<double> &, double);

    std::vector<double> coef_;   //!< per standardized feature
    std::vector<double> mean_;   //!< feature means
    std::vector<double> scale_;  //!< feature standard deviations
    double intercept_ = 0.0;
};

/**
 * Fit a ridge regression model.
 *
 * @param x rows of features (all rows the same width)
 * @param y targets, same length as x
 * @param lambda L2 penalty strength in standardized space (>= 0)
 */
RidgeModel ridgeFit(const std::vector<std::vector<double>> &x,
                    const std::vector<double> &y, double lambda);

/**
 * Solve the dense linear system a * x = b in place (Gaussian
 * elimination with partial pivoting). `a` is row-major n x n.
 * Calls fatal() on singular systems.
 */
std::vector<double> solveDense(std::vector<std::vector<double>> a,
                               std::vector<double> b);

/** Mean absolute percentage error of a model over a data set. */
double meanAbsolutePercentError(const RidgeModel &model,
                                const std::vector<std::vector<double>> &x,
                                const std::vector<double> &y);

} // namespace flep

#endif // FLEP_PERFMODEL_LINREG_HH
