/**
 * @file
 * Static description of the simulated GPU.
 *
 * The default preset models the Nvidia Tesla K40 (Kepler, 15 SMs) used
 * in the paper's evaluation, including the host-device communication
 * latencies that dominate the cost of FLEP's preemption-flag polling.
 */

#ifndef FLEP_GPU_GPU_CONFIG_HH
#define FLEP_GPU_GPU_CONFIG_HH

#include <string>

#include "common/types.hh"

namespace flep
{

/**
 * Hardware parameters of the simulated device. All latencies are in
 * ticks (nanoseconds).
 */
struct GpuConfig
{
    /** Number of streaming multiprocessors. */
    int numSms = 15;

    /** Maximum concurrent threads per SM. */
    int maxThreadsPerSm = 2048;

    /** Hard cap on active CTAs per SM regardless of resources. */
    int maxCtasPerSm = 16;

    /** 32-bit registers per SM. */
    int regsPerSm = 65536;

    /** Shared memory per SM in bytes. */
    int smemPerSm = 49152;

    /** Threads per warp (used by the resource scan). */
    int warpSize = 32;

    /**
     * Device-side read of a pinned host-memory variable (the temp_P /
     * spa_P poll), including the block-wide barrier that shares the
     * value. Crosses PCIe, so it is the expensive operation the
     * amortizing factor L exists to hide.
     */
    Tick pinnedReadNs = 1500;

    /**
     * Delay between a host store to pinned memory and device
     * visibility of the new value.
     */
    Tick pinnedWriteVisibleNs = 500;

    /** Device global-memory atomic used by pull_task(). */
    Tick atomicNs = 30;

    /** Host-API kernel launch overhead (cold, through MPS). */
    Tick kernelLaunchNs = 5000;

    /**
     * Gap between back-to-back kernels queued asynchronously in the
     * same stream (the cost a kernel-slicing scheme pays per slice).
     */
    Tick streamLaunchGapNs = 1500;

    /** Hardware scheduler latency to place one CTA on an SM. Small:
     *  the hardware pipelines dispatch with execution. */
    Tick ctaDispatchNs = 20;

    /** One-way latency of a host-process-to-runtime IPC message. */
    Tick ipcNs = 3000;

    /**
     * Cost multiplier for the first chunk of a persistent CTA
     * dispatched after its kernel was preempted: caches and TLBs were
     * repopulated by the preemptor, so resumed work starts cold. This
     * is the dominant component of the profiled preemption overhead.
     */
    double coldRestartFactor = 1.5;

    /**
     * While an SM hosts CTAs of more than one kernel, task bodies are
     * simulated in quanta of this length so the contention factor
     * tracks the changing residency (e.g. a spatial preemptor
     * overlapping the victim's draining chunks). Uniform-residency
     * chunks run as a single event. 0 disables segmentation.
     */
    Tick contentionQuantumNs = 10000;

    /**
     * Original-mode launches are sliced so each CTA works through
     * roughly this many batches per wave; larger values shrink the
     * batch (finer-grained completion times, more dispatch events).
     * Promoted from a hardcoded constant so device-size ablations can
     * sweep the batching/accuracy tradeoff. Must be > 0.
     */
    long origWaveTarget = 200;

    /**
     * Upper bound on the chunks a macro-stepped window may coalesce
     * into one event across all CTAs of an exec. The fast path only
     * engages while residency is uniform, no preemption-flag write is
     * pending and the HW scheduler queue is empty; results are
     * bit-identical to the slow path either way. 0 disables
     * macro-stepping (every chunk is its own event). The
     * FLEP_MACRO_MAX_CHUNKS environment variable, when set, overrides
     * this at GpuDevice construction.
     */
    long macroStepMaxChunks = 2048;

    /** Total CTA slots across the device for a given per-SM count. */
    int
    totalSlots(int ctas_per_sm) const
    {
        return numSms * ctas_per_sm;
    }

    /**
     * First-order throughput proxy: concurrently resident threads
     * (numSms x maxThreadsPerSm). The simulated task throughput of a
     * persistent kernel tracks its resident-CTA count, which both
     * dimensions bound, so the ratio of two devices' indices is a
     * usable cross-config scaling factor for duration predictions
     * trained on one of them (see cluster/prediction.hh).
     */
    double
    throughputIndex() const
    {
        return static_cast<double>(numSms) *
               static_cast<double>(maxThreadsPerSm);
    }

    /**
     * Compact string covering every field, usable as a cache key:
     * configs with equal keys simulate identically.
     */
    std::string cacheKey() const;

    /** The K40 preset used throughout the evaluation. */
    static GpuConfig keplerK40();

    /**
     * A Pascal-class 56-SM device (P100-like geometry). Pascal is the
     * architecture the paper notes "claims to support preemption" in
     * hardware; the preset is used by the device-size ablation to ask
     * how FLEP's spatial preemption scales with SM count.
     */
    static GpuConfig pascalP100();

    /** A small 4-SM device used by fast unit tests. */
    static GpuConfig tiny();

    /** Validate basic sanity; calls fatal() on nonsense values. */
    void validate() const;
};

} // namespace flep

#endif // FLEP_GPU_GPU_CONFIG_HH
