/** @file Tests for cluster job arrival generation. */

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/arrival_gen.hh"
#include "common/types.hh"

namespace flep
{
namespace
{

ClusterArrivalConfig
twoClassConfig()
{
    ClusterArrivalConfig cfg;
    cfg.horizonNs = 20 * ticksPerMs;
    cfg.seed = 7;

    ArrivalClassSpec batch;
    batch.workload = "VA";
    batch.input = InputClass::Large;
    batch.priority = 0;
    batch.ratePerMs = 2.0;

    ArrivalClassSpec interactive;
    interactive.workload = "NN";
    interactive.input = InputClass::Small;
    interactive.priority = 5;
    interactive.ratePerMs = 1.0;
    interactive.sloNs = 3 * ticksPerMs;

    cfg.classes = {batch, interactive};
    return cfg;
}

TEST(ArrivalGen, DeterministicForSameSeed)
{
    const auto cfg = twoClassConfig();
    const auto a = generateClusterJobs(cfg);
    const auto b = generateClusterJobs(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].arrivalNs, b[i].arrivalNs);
        EXPECT_EQ(a[i].priority, b[i].priority);
        EXPECT_EQ(a[i].sloNs, b[i].sloNs);
    }
}

TEST(ArrivalGen, DifferentSeedsDiffer)
{
    auto cfg = twoClassConfig();
    const auto a = generateClusterJobs(cfg);
    cfg.seed = 8;
    const auto b = generateClusterJobs(cfg);
    bool differ = a.size() != b.size();
    for (std::size_t i = 0; !differ && i < a.size(); ++i)
        differ = a[i].arrivalNs != b[i].arrivalNs;
    EXPECT_TRUE(differ);
}

TEST(ArrivalGen, SortedWithDenseIds)
{
    const auto jobs = generateClusterJobs(twoClassConfig());
    ASSERT_FALSE(jobs.empty());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].id, static_cast<int>(i));
        EXPECT_LT(jobs[i].arrivalNs, 20 * ticksPerMs);
        if (i > 0) {
            EXPECT_GE(jobs[i].arrivalNs, jobs[i - 1].arrivalNs);
        }
    }
}

TEST(ArrivalGen, ClassAttributesCarryThrough)
{
    const auto jobs = generateClusterJobs(twoClassConfig());
    std::size_t batch = 0;
    std::size_t interactive = 0;
    for (const auto &job : jobs) {
        if (job.workload == "VA") {
            ++batch;
            EXPECT_EQ(job.priority, 0);
            EXPECT_EQ(job.sloNs, 0u);
        } else {
            ASSERT_EQ(job.workload, "NN");
            ++interactive;
            EXPECT_EQ(job.priority, 5);
            EXPECT_EQ(job.sloNs, Tick{3 * ticksPerMs});
        }
    }
    // 20 ms at 2/ms and 1/ms: both classes clearly populated.
    EXPECT_GT(batch, 10u);
    EXPECT_GT(interactive, 5u);
}

TEST(ArrivalGen, ZeroRateClassIsDisabled)
{
    auto cfg = twoClassConfig();
    cfg.classes[0].ratePerMs = 0.0;
    const auto jobs = generateClusterJobs(cfg);
    ASSERT_FALSE(jobs.empty());
    for (const auto &job : jobs)
        EXPECT_EQ(job.workload, "NN");
}

TEST(ArrivalGen, BurstyPreservesDeterminismAndHorizon)
{
    auto cfg = twoClassConfig();
    cfg.pattern = ArrivalPattern::Bursty;
    cfg.burstPeriodNs = 5 * ticksPerMs;
    cfg.burstDuty = 0.25;
    cfg.burstFactor = 3.0;
    const auto a = generateClusterJobs(cfg);
    const auto b = generateClusterJobs(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].arrivalNs, b[i].arrivalNs);
    for (const auto &job : a)
        EXPECT_LT(job.arrivalNs, cfg.horizonNs);
}

TEST(ArrivalGen, BurstyConcentratesArrivalsInBursts)
{
    ClusterArrivalConfig cfg;
    cfg.horizonNs = 200 * ticksPerMs;
    cfg.seed = 11;
    cfg.pattern = ArrivalPattern::Bursty;
    cfg.burstPeriodNs = 10 * ticksPerMs;
    cfg.burstDuty = 0.2;
    cfg.burstFactor = 4.0;

    ArrivalClassSpec cls;
    cls.workload = "VA";
    cls.ratePerMs = 2.0;
    cfg.classes = {cls};

    const auto jobs = generateClusterJobs(cfg);
    ASSERT_GT(jobs.size(), 50u);
    std::size_t in_burst = 0;
    for (const auto &job : jobs) {
        const Tick phase = job.arrivalNs % cfg.burstPeriodNs;
        if (phase < static_cast<Tick>(cfg.burstDuty *
                                      static_cast<double>(
                                          cfg.burstPeriodNs)))
            ++in_burst;
    }
    // duty * factor = 0.8 of the arrivals should land in the burst
    // window (which covers only 0.2 of the time). Well above the
    // uniform 0.2 even with sampling noise.
    EXPECT_GT(static_cast<double>(in_burst) /
                  static_cast<double>(jobs.size()),
              0.6);
}

TEST(ArrivalGenDeath, RejectsBadConfigs)
{
    auto cfg = twoClassConfig();
    cfg.horizonNs = 0;
    EXPECT_DEATH(generateClusterJobs(cfg), "horizon");

    cfg = twoClassConfig();
    cfg.classes[0].repeats = 0;
    EXPECT_DEATH(generateClusterJobs(cfg), "invocation");
}

} // namespace
} // namespace flep
