/**
 * @file
 * Small string helpers shared by the compiler and the bench printers.
 */

#ifndef FLEP_COMMON_STRINGS_HH
#define FLEP_COMMON_STRINGS_HH

#include <string>
#include <vector>

namespace flep
{

/** Split on a single-character delimiter; empty fields preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** True when `s` begins with `prefix`. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True when `s` ends with `suffix`. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a double with the given number of decimals. */
std::string formatDouble(double v, int decimals);

/** Replace every occurrence of `from` in `s` with `to`. */
std::string replaceAll(std::string s, const std::string &from,
                       const std::string &to);

} // namespace flep

#endif // FLEP_COMMON_STRINGS_HH
