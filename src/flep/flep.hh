/**
 * @file
 * FlepSystem: the library facade.
 *
 * Bundles a simulated machine (GPU device + event-driven simulation),
 * the FLEP runtime with a chosen scheduling policy, and host-process
 * management into one object, so applications can express scenarios
 * in a few lines:
 *
 * @code
 *   flep::FlepSystem sys(flep::FlepSystem::Options{});
 *   auto &batch = sys.addProcess(0, {sys.kernel("NN", ...)});
 *   auto &query = sys.addProcess(5, {sys.kernel("SPMV", ...)});
 *   sys.run();
 * @endcode
 */

#ifndef FLEP_FLEP_FLEP_HH
#define FLEP_FLEP_FLEP_HH

#include <memory>
#include <vector>

#include "flep/experiment.hh"

namespace flep
{

/** One assembled FLEP machine. */
class FlepSystem
{
  public:
    /** Which FLEP policy to install. */
    enum class Policy
    {
        Hpf,
        Ffs
    };

    /** Construction options. */
    struct Options
    {
        GpuConfig gpu = GpuConfig::keplerK40();
        Policy policy = Policy::Hpf;
        HpfPolicy::Config hpf;
        FfsPolicy::Config ffs;
        std::uint64_t seed = 1;
        /**
         * Offline phase effort. The defaults are reduced from the
         * paper's 100/50 to keep example startup snappy; benches use
         * runOfflinePhase() directly with the paper values.
         */
        int trainInputs = 40;
        int profileRuns = 10;
    };

    explicit FlepSystem(Options opts);
    ~FlepSystem();

    FlepSystem(const FlepSystem &) = delete;
    FlepSystem &operator=(const FlepSystem &) = delete;

    /** The benchmark suite available to scripts. */
    const BenchmarkSuite &suite() const { return suite_; }

    /** Offline-phase products (models, overheads, amortizing L). */
    const OfflineArtifacts &artifacts() const { return artifacts_; }

    /** Underlying simulation (advanced use). */
    Simulation &sim() { return *sim_; }

    /** Simulated device (advanced use). */
    GpuDevice &gpu() { return *gpu_; }

    /** The FLEP runtime engine. */
    FlepRuntime &runtime() { return *runtime_; }

    /** Build a script entry for a named benchmark. */
    HostProcess::ScriptEntry kernel(const std::string &workload,
                                    InputClass input, Priority priority,
                                    Tick delay_ns = 0,
                                    int repeats = 1) const;

    /**
     * Add a host process with the given script. Started lazily by
     * run()/runFor().
     */
    HostProcess &addProcess(std::vector<HostProcess::ScriptEntry> script);

    /** Run until every process finishes. @return final time. */
    Tick run();

    /** Run for a bounded amount of simulated time. */
    Tick runFor(Tick ns);

    /** All processes, in creation order. */
    const std::vector<std::unique_ptr<HostProcess>> &processes() const
    {
        return hosts_;
    }

  private:
    void startPending();

    Options opts_;
    BenchmarkSuite suite_;
    OfflineArtifacts artifacts_;
    std::unique_ptr<Simulation> sim_;
    std::unique_ptr<GpuDevice> gpu_;
    std::unique_ptr<FlepRuntime> runtime_;
    std::vector<std::unique_ptr<HostProcess>> hosts_;
    std::size_t started_ = 0;
};

} // namespace flep

#endif // FLEP_FLEP_FLEP_HH
