/**
 * @file
 * google-benchmark microbenchmarks of the library's hot operations:
 * event-queue throughput, occupancy calculation, ridge fitting, the
 * HPF decision path, and full solo-kernel simulation.
 */

#include <benchmark/benchmark.h>

#include "gpu/measure.hh"
#include "gpu/occupancy.hh"
#include "perfmodel/linreg.hh"
#include "runtime/hpf.hh"
#include "runtime/wait_queue.hh"
#include "sim/event_queue.hh"
#include "workload/suite.hh"

namespace
{

using namespace flep;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    std::vector<Tick> times(n);
    for (auto &t : times)
        t = static_cast<Tick>(rng.uniformInt(0, 1000000));
    for (auto _ : state) {
        EventQueue q;
        long long acc = 0;
        for (Tick t : times)
            q.schedule(t, [&acc]() { ++acc; });
        q.run();
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long long>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_OccupancyCalc(benchmark::State &state)
{
    const GpuConfig cfg = GpuConfig::keplerK40();
    Rng rng(11);
    std::vector<CtaFootprint> fps(256);
    for (auto &fp : fps) {
        fp.threads = static_cast<int>(rng.uniformInt(1, 32)) * 64;
        fp.regsPerThread = static_cast<int>(rng.uniformInt(10, 128));
        fp.smemBytes = static_cast<int>(rng.uniformInt(0, 48)) * 1024;
    }
    for (auto _ : state) {
        int acc = 0;
        for (const auto &fp : fps)
            acc += maxActiveCtasPerSm(cfg, fp);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_OccupancyCalc);

void
BM_RidgeFit100x4(benchmark::State &state)
{
    Rng rng(13);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        x.push_back({rng.uniform(0, 1e6), 256.0,
                     rng.uniform(0, 2.6e8), 4096.0});
        y.push_back(3.0 * x.back()[0] + rng.normal(0, 1e3));
    }
    for (auto _ : state) {
        const auto model = ridgeFit(x, y, 1.0);
        benchmark::DoNotOptimize(model.intercept());
    }
}
BENCHMARK(BM_RidgeFit100x4);

void
BM_WaitQueueEnqueueDequeue(benchmark::State &state)
{
    Rng rng(17);
    std::vector<std::unique_ptr<KernelRecord>> records;
    for (int i = 0; i < 64; ++i) {
        records.push_back(std::make_unique<KernelRecord>(
            nullptr, i, "K", i % 4,
            static_cast<Tick>(rng.uniformInt(1000, 10000000)), 0));
    }
    for (auto _ : state) {
        WaitQueueSet q;
        for (auto &rec : records)
            q.enqueue(*rec);
        bool found = false;
        while (!q.empty()) {
            const Priority p = q.highestNonEmpty(found);
            benchmark::DoNotOptimize(q.popFront(p));
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WaitQueueEnqueueDequeue);

void
BM_SoloKernelSimulation(benchmark::State &state)
{
    BenchmarkSuite suite;
    const GpuConfig cfg = GpuConfig::keplerK40();
    const Workload &w = suite.byName("MM");
    const auto desc = w.makeLaunch(w.input(InputClass::Large),
                                   ExecMode::Persistent, 2, 0);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            soloRun(cfg, desc, seed++).durationNs);
    }
}
BENCHMARK(BM_SoloKernelSimulation);

} // namespace

BENCHMARK_MAIN();
