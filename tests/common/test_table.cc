/** @file Tests for the ASCII table printer. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace flep
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("beta").cell(static_cast<long long>(42));

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, ColumnsAlign)
{
    Table t("align");
    t.setHeader({"k", "v"});
    t.row().cell("long-name-here").cell(1.0, 2);
    t.row().cell("x").cell(100.0, 2);

    std::ostringstream os;
    t.print(os);
    // Every data line has the same width.
    std::istringstream is(os.str());
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] != '|')
            continue;
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TableDeath, RowWidthMustMatchHeader)
{
    Table t("bad");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace flep
