#include "gpu/macro_step.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "gpu/contention.hh"
#include "gpu/gpu_device.hh"
#include "obs/trace_recorder.hh"

namespace flep
{

namespace
{

/**
 * Boundary key for the virtual event loop: (end tick, launch order) —
 * exactly the (when, event id) order of the real queue. Each CTA has
 * at most one chunk in flight, so the full ChunkFlight lives in a
 * per-CTA slot and only this 24-byte key moves through the queue.
 */
struct BoundaryKey
{
    Tick end = 0;
    std::uint64_t order = 0;
    std::uint32_t slot = 0;
};

bool
keyBefore(const BoundaryKey &a, const BoundaryKey &b)
{
    if (a.end != b.end)
        return a.end < b.end;
    return a.order < b.order;
}

/**
 * The window's future boundaries, ascending (end, order): a sorted
 * ring popped at the front, inserted near the back.
 *
 * A binary heap is the textbook structure here, but the workload is
 * strongly in favour of a sorted array: a freshly launched chunk ends
 * roughly one whole chunk after the *earliest* in-flight boundary, so
 * its key is (nearly) the maximum — with uniform task costs the
 * insert is exactly at the back, and with cv > 0 the relative spread
 * of a k-task chunk is cv/sqrt(k), so only a handful of tail entries
 * ever need shifting. That makes the common insert O(1) with a short
 * memmove, against the heap's guaranteed log-n sift of the full
 * depth. (A pathological cost model degrades to O(n) shifts, which
 * for n = resident CTAs is still bounded and correct.)
 */
class BoundaryRing
{
  public:
    void
    reset(std::vector<BoundaryKey> keys)
    {
        ring_ = std::move(keys);
        head_ = 0;
        std::sort(ring_.begin(), ring_.end(), keyBefore);
    }

    bool empty() const { return head_ == ring_.size(); }

    BoundaryKey
    popFront()
    {
        FLEP_ASSERT(!empty(), "macro window ran out of flights");
        return ring_[head_++];
    }

    void
    insert(const BoundaryKey &key)
    {
        // Reclaim the popped prefix once it dominates the storage so
        // the ring stays O(live) even over thousands of launches.
        if (head_ >= 1024 && head_ * 2 >= ring_.size()) {
            ring_.erase(ring_.begin(),
                        ring_.begin() +
                            static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
        std::size_t pos = ring_.size();
        ring_.push_back(key);
        while (pos > head_ && keyBefore(key, ring_[pos - 1])) {
            ring_[pos] = ring_[pos - 1];
            --pos;
        }
        ring_[pos] = key;
    }

    /** The not-yet-popped keys, in ascending (end, order). */
    const BoundaryKey *liveBegin() const { return ring_.data() + head_; }
    const BoundaryKey *liveEnd() const { return ring_.data() + ring_.size(); }

  private:
    std::vector<BoundaryKey> ring_;
    std::size_t head_ = 0;
};

bool
orderBefore(const ChunkFlight &a, const ChunkFlight &b)
{
    return a.order < b.order;
}

} // namespace

MacroStepEngine::MacroStepEngine(GpuDevice &dev)
    : dev_(dev)
{}

void
MacroStepEngine::registerFlight(KernelExec *exec,
                                const ChunkFlight &flight)
{
    const bool inserted =
        stateFor(exec).flights.emplace(flight.first, flight).second;
    FLEP_ASSERT(inserted, "duplicate chunk flight for task ",
                flight.first);
}

void
MacroStepEngine::unregisterFlight(KernelExec *exec, long first)
{
    auto it = execs_.find(exec);
    if (it != execs_.end())
        it->second.flights.erase(first);
}

void
MacroStepEngine::onExecComplete(KernelExec *exec)
{
    auto it = execs_.find(exec);
    if (it == execs_.end())
        return;
    FLEP_ASSERT(!it->second.window,
                "exec completed with an open macro window");
    FLEP_ASSERT(it->second.flights.empty() && it->second.seeds.empty(),
                "exec completed with chunks in flight");
    execs_.erase(it);
}

bool
MacroStepEngine::tryOpenWindow(const std::shared_ptr<KernelExec> &exec,
                               SmId sm)
{
    ExecState &st = stateFor(exec.get());
    FLEP_ASSERT(!st.window, "persistent iteration inside an open "
                            "macro window");
    FLEP_ASSERT(st.flights.empty() || st.seeds.empty(),
                "real and seed flights cannot coexist");

    const Tick now = dev_.sim().now();
    const KernelLaunchDesc &desc = exec->desc_;
    const long total = desc.totalTasks;

    // Eligibility: every per-chunk decision the window elides must be
    // provably constant over its whole span — the flag polls all read
    // zero, no CTA can arrive or leave, the contention factor of each
    // involved SM is fixed, and every sibling CTA sits in a
    // single-segment chunk whose completion tick is already known.
    bool ok = budget_ > 0 && desc.mode == ExecMode::Persistent &&
              !desc.onTask && exec->flag_.quiescentZeroAt(now) &&
              dev_.scheduler_.pendingBatches() == 0 &&
              total - exec->tasksClaimed_ > 0 &&
              static_cast<long>(st.flights.size() + st.seeds.size()) ==
                  static_cast<long>(exec->activeCtas_) - 1;
    if (ok) {
        // The in-flight chunks plus the entering CTA cover every CTA
        // of the exec, so their SMs are exactly the hosting set:
        // requiring each to host only this exec gives uniform
        // residency everywhere the window touches.
        auto uniform = [this, &exec](SmId s) {
            const auto &res =
                dev_.smResidents_[static_cast<std::size_t>(s)];
            return res.size() == 1 && res.count(exec.get()) == 1;
        };
        ok = uniform(sm);
        for (const auto &[first, f] : st.flights)
            ok = ok && uniform(f.sm);
        for (const auto &f : st.seeds)
            ok = ok && uniform(f.sm);
    }
    if (!ok) {
        if (!st.seeds.empty()) {
            std::vector<ChunkFlight> seeds = std::move(st.seeds);
            st.seeds.clear();
            materialize(exec, std::move(seeds));
        }
        return false;
    }
    // Chunk sizes are bounded by amortizeL and the log narrows them
    // to 32 bits; a window never opens for an exec that could overflow.
    FLEP_ASSERT(desc.amortizeL <= 0x7fffffffL,
                "amortizeL too large for the macro-step log");

    // Absorb every sibling in-flight chunk: cancel the real events
    // and renumber the flights into window-local launch order (their
    // event ids, and the seeds' previous-window orders, both increase
    // in launch order, so a stable renumbering preserves FIFO ties).
    // Real flights come out of a hash map and need sorting; seeds are
    // a previous window's remnant, stored already sorted — and the
    // two never coexist (asserted above), so the common chained-
    // window case skips the sort entirely.
    std::vector<ChunkFlight> absorbed;
    absorbed.reserve(st.flights.size() + st.seeds.size() + 1);
    const bool from_flights = !st.flights.empty();
    for (const auto &[first, f] : st.flights) {
        const bool pending = dev_.sim().events().deschedule(f.ev);
        FLEP_ASSERT(pending, "in-flight chunk without pending event");
        absorbed.push_back(f);
    }
    st.flights.clear();
    for (const auto &f : st.seeds)
        absorbed.push_back(f);
    st.seeds.clear();
    if (from_flights) {
        std::sort(absorbed.begin(), absorbed.end(), orderBefore);
    } else {
        FLEP_ASSERT(std::is_sorted(absorbed.begin(), absorbed.end(),
                                   orderBefore),
                    "seed flights arrived out of launch order");
    }
    std::uint64_t next_order = 0;
    for (auto &f : absorbed) {
        f.ev = 0;
        f.order = next_order++;
    }

    auto window = std::make_unique<MacroWindow>();
    window->exec = exec;
    window->openTick = now;

    // Per-SM inflation factors are constants of the window; record
    // each SM's residency epoch so the commit can assert nothing
    // changed underneath (the invalidation hooks make this
    // unreachable — it is a safety net, not a code path). Indexed by
    // SM id so the per-launch lookup is one load, not a scan.
    std::vector<double> factor_by_sm(dev_.sms_.size(), -1.0);
    auto factor_for = [this, &desc, &factor_by_sm, &window](SmId s) {
        double &f = factor_by_sm[static_cast<std::size_t>(s)];
        if (f < 0.0) {
            const Sm &sm_obj = dev_.sms_[static_cast<std::size_t>(s)];
            f = contentionFactor(desc.contentionBeta,
                                 sm_obj.residentCtas());
            window->smEpochs.emplace_back(s, sm_obj.residencyEpoch());
        }
        return f;
    };

    // The entering CTA's iteration happens for real, now: its poll,
    // claim and RNG draw are due at this tick on the slow path too.
    exec->pollCount_ += 1;
    const long fair = std::max<long>(
        1, (total - exec->tasksClaimed_) / exec->waveEstimate_);
    long first = 0;
    const long k = dev_.claimTasks(
        *exec, std::min<long>(desc.amortizeL, fair), first);
    FLEP_ASSERT(k > 0, "entering claim came up empty");
    const Tick base = desc.cost.sampleChunk(k, exec->rng_);

    window->rngAtOpen = exec->rng_;

    ChunkFlight entering;
    entering.sm = sm;
    entering.order = next_order++;
    entering.begin = now;
    entering.k = k;
    entering.first = first;
    entering.end =
        now + dev_.cfg_.pinnedReadNs +
        static_cast<Tick>(k) * dev_.cfg_.atomicNs +
        std::max<Tick>(static_cast<Tick>(static_cast<double>(base) *
                                         factor_for(sm)), 1);

    // Virtual event loop on copies of the shared state. Boundaries
    // pop in (end, order) — the order the real queue would fire the
    // completion events — so the claims and RNG draws of different
    // CTAs interleave exactly as on the slow path. Each CTA slot
    // holds its one in-flight chunk and is relaunched in place; the
    // ring shuffles only the 24-byte keys.
    std::vector<ChunkFlight> slots = std::move(absorbed);
    slots.push_back(entering);
    std::vector<BoundaryKey> keys;
    keys.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        keys.push_back(BoundaryKey{slots[i].end, slots[i].order,
                                   static_cast<std::uint32_t>(i)});
    }
    BoundaryRing ring;
    ring.reset(std::move(keys));
    long launches = 1;

    long v_claimed = exec->tasksClaimed_;
    Rng v_rng = exec->rng_;

    // One log entry per boundary: at most budget_ launches plus the
    // stop entry (capped so a huge budget cannot pre-commit memory).
    window->log.reserve(static_cast<std::size_t>(
                            std::min<long>(budget_, 8192)) +
                        slots.size() + 1);

    for (;;) {
        const BoundaryKey top = ring.popFront();
        ChunkFlight &f = slots[top.slot];
        const Tick boundary = top.end;

        MacroLogEntry entry;
        entry.tick = boundary;
        entry.begin = f.begin;
        entry.first = f.first;
        entry.order = f.order;
        entry.sm = f.sm;
        entry.k = static_cast<std::int32_t>(f.k);

        const long unclaimed = total - v_claimed;
        const bool launch = unclaimed > 0 && launches < budget_;
        if (launch) {
            // The CTA starts its next chunk at this boundary, exactly
            // as the slow-path completion callback would; its slot is
            // rewritten in place (the entry recorded the old chunk).
            const long fair2 = std::max<long>(
                1, unclaimed / exec->waveEstimate_);
            const long k2 = std::min(
                std::min<long>(desc.amortizeL, fair2), unclaimed);
            f.order = next_order++;
            f.begin = boundary;
            f.k = k2;
            f.first = v_claimed;
            v_claimed += k2;
            const Tick base2 = desc.cost.sampleChunk(k2, v_rng);
            f.end =
                boundary + dev_.cfg_.pinnedReadNs +
                static_cast<Tick>(k2) * dev_.cfg_.atomicNs +
                std::max<Tick>(
                    static_cast<Tick>(static_cast<double>(base2) *
                                      factor_for(f.sm)), 1);
            ring.insert(BoundaryKey{f.end, f.order, top.slot});
            launches += 1;
            entry.launchedK = static_cast<std::int32_t>(k2);
        }
        window->log.push_back(entry);
        if (!launch) {
            // Task pool drained or budget spent: this CTA's next move
            // (retire, or the next window) happens for real at the
            // close boundary.
            window->stopSm = f.sm;
            window->closeTick = boundary;
            break;
        }
    }
    window->rngAtClose = v_rng;

    // The live ring keys are the still-in-flight chunks; ascending
    // (end, order) is not launch order, so the remnant still sorts.
    window->remnant.reserve(
        static_cast<std::size_t>(ring.liveEnd() - ring.liveBegin()));
    for (const BoundaryKey *it = ring.liveBegin();
         it != ring.liveEnd(); ++it)
        window->remnant.push_back(slots[it->slot]);
    std::sort(window->remnant.begin(), window->remnant.end(),
              orderBefore);

    KernelExec *raw = exec.get();
    window->commitEv = dev_.sim().events().schedule(
        window->closeTick, [this, raw]() { commit(raw); });
    exec->macroWindow_ = window.get();
    st.window = std::move(window);
    ++windows_;
    return true;
}

void
MacroStepEngine::syncTo(ExecState &st, Tick now)
{
    MacroWindow *w = st.window.get();
    if (w == nullptr)
        return;
    KernelExec *exec = w->exec.get();
    // The cursor advances before the busy-time hooks run, so a hook
    // that reads an exec getter (re-entering sync) sees each entry
    // applied exactly once. Counter effects are pure increments; the
    // RNG is settled only at commit/invalidation (nothing reads it
    // while the window is open — all of the exec's CTAs are inside).
    while (w->committed < w->log.size() &&
           w->log[w->committed].tick <= now) {
        const MacroLogEntry &e = w->log[w->committed];
        ++w->committed;
        exec->tasksCompleted_ += e.k;
        if (e.launchedK >= 0) {
            exec->tasksClaimed_ += e.launchedK;
            exec->pollCount_ += 1;
        }
        ++fastChunks_;
        dev_.accountBusy(*exec, e.sm, e.begin, e.tick);
    }
}

void
MacroStepEngine::sync(KernelExec *exec)
{
    auto it = execs_.find(exec);
    if (it == execs_.end() || !it->second.window)
        return;
    syncTo(it->second, dev_.sim().now());
}

void
MacroStepEngine::syncAll()
{
    for (auto &[exec, st] : execs_) {
        if (st.window)
            syncTo(st, dev_.sim().now());
    }
}

void
MacroStepEngine::invalidate(KernelExec *exec)
{
    auto it = execs_.find(exec);
    if (it == execs_.end() || !it->second.window)
        return;
    invalidateState(exec, it->second);
}

void
MacroStepEngine::invalidateAll()
{
    for (auto &[exec, st] : execs_) {
        if (st.window)
            invalidateState(exec, st);
    }
}

void
MacroStepEngine::invalidateState(KernelExec *exec, ExecState &st)
{
    MacroWindow &w = *st.window;
    const Tick now = dev_.sim().now();
    ++invalidations_;

    const bool pending = dev_.sim().events().deschedule(w.commitEv);
    FLEP_ASSERT(pending, "macro commit event fired with window open");

    // Everything at or before the interruption tick has happened.
    syncTo(st, now);

    // Settle the exec RNG at the committed prefix by replaying the
    // prefix's draws from the window-open snapshot (each draw's k is
    // in the log); later virtual draws never happened.
    {
        const KernelLaunchDesc &desc = exec->desc_;
        Rng r = w.rngAtOpen;
        for (std::size_t i = 0; i < w.committed; ++i) {
            if (w.log[i].launchedK >= 0)
                (void)desc.cost.sampleChunk(w.log[i].launchedK, r);
        }
        exec->rng_ = r;
    }

    // Chunks launched at or before now that complete later are still
    // in flight; later virtual launches never happened.
    std::vector<ChunkFlight> inflight;
    for (std::size_t i = w.committed; i < w.log.size(); ++i) {
        if (w.log[i].begin <= now)
            inflight.push_back(w.log[i].flight());
    }
    for (const auto &f : w.remnant) {
        if (f.begin <= now)
            inflight.push_back(f);
    }

    // Only the close boundary leaves its CTA without a next chunk; if
    // it was committed (the invalidator shares its tick), give that
    // CTA a real continuation event.
    const bool stop_committed = w.committed == w.log.size();
    std::shared_ptr<KernelExec> exec_shared = w.exec;
    const SmId stop_sm = w.stopSm;

    exec->macroWindow_ = nullptr;
    st.window.reset();

    materialize(exec_shared, std::move(inflight));
    if (stop_committed) {
        dev_.sim().events().schedule(
            now, [this, exec_shared, stop_sm]() {
                dev_.persistentIterate(exec_shared, stop_sm, false);
            });
    }
}

void
MacroStepEngine::materialize(const std::shared_ptr<KernelExec> &exec,
                             std::vector<ChunkFlight> flights)
{
    // Ascending launch order: completion events at equal ticks must
    // fire in the order the slow path would have scheduled them.
    std::sort(flights.begin(), flights.end(), orderBefore);
    for (const ChunkFlight &f : flights) {
        ChunkFlight real = f;
        real.ev = dev_.sim().events().schedule(f.end, [this, exec,
                                                       f]() {
            // A fast-path-launched chunk completing on the slow path:
            // mirror the persistent completion callback exactly.
            unregisterFlight(exec.get(), f.first);
            ++slowChunks_;
            dev_.accountBusy(*exec, f.sm, f.begin, dev_.sim().now());
            exec->tasksCompleted_ += f.k;
            GpuDevice::runTaskHook(*exec, f.first, f.k);
            dev_.persistentIterate(exec, f.sm, false);
        });
        real.order = real.ev;
        registerFlight(exec.get(), real);
    }
}

void
MacroStepEngine::commit(KernelExec *exec)
{
    auto it = execs_.find(exec);
    FLEP_ASSERT(it != execs_.end() && it->second.window,
                "macro commit without an open window");
    ExecState &st = it->second;
    MacroWindow &w = *st.window;
    FLEP_ASSERT(dev_.sim().now() == w.closeTick,
                "macro commit fired off its close boundary");

    syncTo(st, w.closeTick);
    FLEP_ASSERT(w.committed == w.log.size(),
                "macro log not fully committed at close");
    exec->rng_ = w.rngAtClose;
    for (const auto &[sm_id, epoch] : w.smEpochs) {
        FLEP_ASSERT(dev_.sms_[static_cast<std::size_t>(sm_id)]
                            .residencyEpoch() == epoch,
                    "SM residency changed under an open macro window");
    }

    std::shared_ptr<KernelExec> exec_shared = w.exec;
    const SmId stop_sm = w.stopSm;
    st.seeds = std::move(w.remnant);
    exec->macroWindow_ = nullptr;
    st.window.reset();

    if (TraceRecorder *tr = dev_.sim().tracer()) {
        tr->counter(dev_.tracePid(), 0, "macro-fast-chunks",
                    static_cast<double>(fastChunks_));
        tr->counter(dev_.tracePid(), 0, "macro-slow-chunks",
                    static_cast<double>(slowChunks_));
    }

    // Continue the stop CTA at the close boundary: it either chains
    // straight into the next window (re-absorbing the remnant as
    // seeds) or tryOpenWindow declines, materializes the seeds and
    // the slow path takes over — including the k == 0 retire once
    // the task pool has drained.
    dev_.persistentIterate(exec_shared, stop_sm, false);
}

} // namespace flep
