#include "workload/benchmarks.hh"

namespace flep
{

/**
 * PF (Rodinia pathfinder): dynamic programming over a 2-D grid. Each
 * task relaxes one row block; tasks are cheap and fairly uniform, so
 * the paper's amortizing factor is 150. Wavefront dependencies make
 * the cost mildly input-sensitive.
 */
WorkloadPtr
makePf()
{
    Workload::Params p;
    p.name = "PF";
    p.source = "Rodinia";
    p.description = "dynamic programming";
    p.kernelLoc = 81;
    p.paperAmortizeL = 150;
    p.contentionBeta = 0.04;
    p.footprint = CtaFootprint{256, 32, 2048};

    p.largeTasks = 642000;
    p.largeTaskNs = 1070.0;
    p.smallTasks = 69300;
    p.smallTaskNs = 1044.0;
    p.trivialCtas = 32;
    p.trivialTaskNs = 45346.2;

    p.taskCv = 0.03;
    p.hiddenCv = 0.08;
    p.sizeExponent = 0.02;
    return std::make_unique<Workload>(p);
}

} // namespace flep
