/** @file The benchmark kernels, as mini-CUDA source, go through the
 *  whole compilation engine. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "compiler/parser.hh"
#include "compiler/printer.hh"
#include "compiler/resource_scan.hh"
#include "compiler/transform.hh"
#include "gpu/occupancy.hh"
#include "workload/kernel_sources.hh"
#include "workload/suite.hh"

namespace flep
{
namespace
{

using minicuda::FuncKind;
using minicuda::Program;
using minicuda::TransformKind;
using minicuda::TransformOptions;

class KernelSourceTest
    : public ::testing::TestWithParam<KernelSource>
{
};

TEST_P(KernelSourceTest, ParsesWithExpectedKernel)
{
    const auto &src = GetParam();
    const Program prog = minicuda::parse(src.source);
    const auto *kernel = prog.find(src.kernelName);
    ASSERT_NE(kernel, nullptr) << src.benchmark;
    EXPECT_EQ(kernel->kind, FuncKind::Global);
    // Each bundle also carries a host launcher that launches it.
    bool has_launch = false;
    for (const auto &fn : prog.functions) {
        if (fn.kind == FuncKind::Host)
            has_launch = true;
    }
    EXPECT_TRUE(has_launch) << src.benchmark;
}

TEST_P(KernelSourceTest, ResourceScanFitsOnTheK40)
{
    const auto &src = GetParam();
    const Program prog = minicuda::parse(src.source);
    const auto res = minicuda::scanKernelResources(
        *prog.find(src.kernelName));
    // Every benchmark kernel must be schedulable with 256 threads.
    const CtaFootprint fp{256, res.regsPerThread,
                          res.smemBytesPerCta};
    EXPECT_GE(maxActiveCtasPerSm(GpuConfig::keplerK40(), fp), 1)
        << src.benchmark;
}

TEST_P(KernelSourceTest, TransformsIntoAllThreeForms)
{
    const auto &src = GetParam();
    const Program prog = minicuda::parse(src.source);
    for (auto kind : {TransformKind::TemporalNaive,
                      TransformKind::TemporalAmortized,
                      TransformKind::Spatial}) {
        TransformOptions opts;
        opts.kind = kind;
        const Program out = minicuda::transformProgram(prog, opts);
        EXPECT_NE(out.find(src.kernelName + "_flep"), nullptr)
            << src.benchmark;
        EXPECT_NE(out.find(src.kernelName + "_task"), nullptr)
            << src.benchmark;
        // The transformed output is valid mini-CUDA again.
        EXPECT_NO_THROW(minicuda::parse(minicuda::printProgram(out)))
            << src.benchmark;
    }
}

TEST_P(KernelSourceTest, HostLaunchIntercepted)
{
    const auto &src = GetParam();
    TransformOptions opts;
    const Program out = minicuda::transformProgram(
        minicuda::parse(src.source), opts);
    const std::string printed = minicuda::printProgram(out);
    EXPECT_NE(printed.find("flep_intercept("), std::string::npos)
        << src.benchmark;
    EXPECT_NE(printed.find("flep_wait_complete(flep_hnd)"),
              std::string::npos)
        << src.benchmark;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, KernelSourceTest,
                         ::testing::ValuesIn(allKernelSources()),
                         [](const auto &info) {
                             return info.param.benchmark;
                         });

TEST(KernelSources, CoversTheWholeSuite)
{
    BenchmarkSuite suite;
    EXPECT_EQ(allKernelSources().size(), suite.size());
    for (const auto &name : suite.names())
        EXPECT_NO_THROW(benchmarkKernelSource(name)) << name;
    EXPECT_THROW(benchmarkKernelSource("NOPE"), FatalError);
}

TEST(KernelSources, LinesTrackTable1Sizes)
{
    // VA must stay tiny and CFD the largest, mirroring Table 1's
    // lines-of-code column.
    auto lines = [](const std::string &s) {
        return std::count(s.begin(), s.end(), '\n');
    };
    const auto va = lines(benchmarkKernelSource("VA").source);
    const auto cfd = lines(benchmarkKernelSource("CFD").source);
    const auto nn = lines(benchmarkKernelSource("NN").source);
    EXPECT_LT(va, nn + 5);
    EXPECT_GT(cfd, va * 2);
}

} // namespace
} // namespace flep
