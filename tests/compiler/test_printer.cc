/** @file Tests for the AST pretty-printer. */

#include <gtest/gtest.h>

#include "compiler/parser.hh"
#include "compiler/printer.hh"

namespace flep::minicuda
{
namespace
{

TEST(Printer, ExpressionsParenthesizeCompounds)
{
    const auto e = parseExpression("a + b * c");
    EXPECT_EQ(printExpr(*e), "a + (b * c)");
}

TEST(Printer, LiteralsKeepTypes)
{
    EXPECT_EQ(printExpr(*parseExpression("42")), "42");
    EXPECT_EQ(printExpr(*parseExpression("1.5f")), "1.5f");
    EXPECT_EQ(printExpr(*parseExpression("true")), "true");
    // Whole-valued floats keep a decimal point (stay float-typed).
    EXPECT_EQ(printExpr(*parseExpression("2.0f")), "2.0f");
}

TEST(Printer, UnaryAndPostfix)
{
    EXPECT_EQ(printExpr(*parseExpression("-x")), "-x");
    EXPECT_EQ(printExpr(*parseExpression("i++")), "i++");
    EXPECT_EQ(printExpr(*parseExpression("!done")), "!done");
    EXPECT_EQ(printExpr(*parseExpression("*p")), "*p");
}

TEST(Printer, MemberIndexCall)
{
    EXPECT_EQ(printExpr(*parseExpression("threadIdx.x")),
              "threadIdx.x");
    EXPECT_EQ(printExpr(*parseExpression("a[i]")), "a[i]");
    EXPECT_EQ(printExpr(*parseExpression("f(x, 1)")), "f(x, 1)");
}

TEST(Printer, TernaryRoundTrips)
{
    EXPECT_EQ(printExpr(*parseExpression("a ? b : c")),
              "a ? b : c");
    EXPECT_EQ(printExpr(*parseExpression("x < 0 ? -x : x")),
              "(x < 0) ? (-x) : x");
}

TEST(Printer, StatementsIndent)
{
    const Program prog = parse(R"(
void f(int n)
{
    if (n > 0)
    {
        n = n - 1;
    }
}
)");
    const std::string out = printFunction(prog.functions[0]);
    EXPECT_NE(out.find("void f(int n)\n{\n"), std::string::npos);
    EXPECT_NE(out.find("    if (n > 0)\n"), std::string::npos);
    EXPECT_NE(out.find("        n = n - 1;\n"), std::string::npos);
}

TEST(Printer, SharedArrayDecl)
{
    const Program prog = parse(
        "__global__ void k(float *a) { __shared__ float t[8][4]; }");
    const std::string out = printProgram(prog);
    EXPECT_NE(out.find("__shared__ float t[8][4];"),
              std::string::npos);
}

TEST(Printer, LaunchStatement)
{
    const Program prog =
        parse("void h(float *a) { k<<<10, 256>>>(a); }");
    const std::string out = printProgram(prog);
    EXPECT_NE(out.find("k<<<10, 256>>>(a);"), std::string::npos);
}

TEST(Printer, PointerTypesSpelled)
{
    const Program prog =
        parse("void f(volatile unsigned int *p, const float *x) { }");
    const std::string out = printProgram(prog);
    EXPECT_NE(out.find("volatile unsigned int *p"), std::string::npos);
    EXPECT_NE(out.find("const float *x"), std::string::npos);
}

/** Print -> parse -> print is a fixed point for assorted programs. */
class PrinterRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PrinterRoundTrip, FixedPoint)
{
    const Program once = parse(GetParam());
    const std::string printed = printProgram(once);
    EXPECT_EQ(printProgram(parse(printed)), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, PrinterRoundTrip,
    ::testing::Values(
        "__global__ void k(int *a) { a[blockIdx.x] = 1; }",
        "void h() { for (int i = 0; i < 10; i++) { h(); } }",
        "__device__ void d(float x) { while (x > 0.0f) { x = x - 1.0f; } }",
        "__global__ void k(float *a, int n) {\n"
        "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
        "  if (i < n && a[i] >= 0.0f) a[i] = sqrtf(a[i]);\n"
        "  else a[i] = 0.0f;\n"
        "}",
        "void h(float *a, int g) { k<<<g, 128>>>(a, g * 128); }"));

} // namespace
} // namespace flep::minicuda
