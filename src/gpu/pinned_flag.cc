#include "gpu/pinned_flag.hh"

namespace flep
{

void
PinnedFlag::hostWrite(Tick now, int value)
{
    // Collapse the previous pending store if it has already landed.
    if (now >= pendingSince_)
        visibleValue_ = pendingValue_;
    pendingValue_ = value;
    pendingSince_ = now + visibleDelay_;
    if (writeObserver_)
        writeObserver_(now, value);
}

int
PinnedFlag::deviceRead(Tick now) const
{
    return now >= pendingSince_ ? pendingValue_ : visibleValue_;
}

} // namespace flep
