/** @file Parallel batch runner vs. serial loop: bit-identical results. */

#include <vector>

#include <gtest/gtest.h>

#include "flep/experiment.hh"

namespace flep
{
namespace
{

/** Shared fixtures: train once for the whole file. */
class ParallelCoRunTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        suite_ = new BenchmarkSuite();
        // Reduced offline effort keeps the test fast; accuracy is
        // covered by the perfmodel tests.
        artifacts_ = new OfflineArtifacts(
            runOfflinePhase(*suite_, GpuConfig::keplerK40(), 30, 8));
    }

    static void
    TearDownTestSuite()
    {
        delete artifacts_;
        delete suite_;
        artifacts_ = nullptr;
        suite_ = nullptr;
    }

    /** A batch touching every scheduler kind and several seeds. */
    static std::vector<CoRunConfig>
    mixedBatch()
    {
        const std::vector<SchedulerKind> kinds = {
            SchedulerKind::Mps, SchedulerKind::FlepHpf,
            SchedulerKind::FlepFfs};
        std::vector<CoRunConfig> cfgs;
        for (SchedulerKind kind : kinds) {
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                CoRunConfig cfg;
                cfg.scheduler = kind;
                cfg.seed = seed * 101;
                cfg.kernels = {
                    {"NN", InputClass::Small, 0, 0, 1},
                    {"SPMV", InputClass::Small, 5, 20000, 1}};
                cfgs.push_back(cfg);
            }
        }
        return cfgs;
    }

    static void
    expectIdentical(const CoRunResult &a, const CoRunResult &b)
    {
        ASSERT_EQ(a.invocations.size(), b.invocations.size());
        for (std::size_t i = 0; i < a.invocations.size(); ++i) {
            EXPECT_EQ(a.invocations[i].process,
                      b.invocations[i].process);
            EXPECT_EQ(a.invocations[i].finishTick,
                      b.invocations[i].finishTick);
            EXPECT_EQ(a.invocations[i].turnaroundNs(),
                      b.invocations[i].turnaroundNs());
        }
        EXPECT_EQ(a.makespanNs, b.makespanNs);
        EXPECT_EQ(a.preemptions, b.preemptions);
        EXPECT_EQ(a.overallShare, b.overallShare);
        EXPECT_EQ(a.shareSeries, b.shareSeries);
    }

    static BenchmarkSuite *suite_;
    static OfflineArtifacts *artifacts_;
};

BenchmarkSuite *ParallelCoRunTest::suite_ = nullptr;
OfflineArtifacts *ParallelCoRunTest::artifacts_ = nullptr;

TEST_F(ParallelCoRunTest, BatchMatchesSerialLoopAcrossSchedulers)
{
    const auto cfgs = mixedBatch();

    std::vector<CoRunResult> serial;
    for (const auto &cfg : cfgs)
        serial.push_back(runCoRun(*suite_, *artifacts_, cfg));

    const auto batch = runCoRunBatch(*suite_, *artifacts_, cfgs, 4);

    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], batch[i]);
}

TEST_F(ParallelCoRunTest, OneThreadBatchMatchesSerialLoop)
{
    const auto cfgs = mixedBatch();
    std::vector<CoRunResult> serial;
    for (const auto &cfg : cfgs)
        serial.push_back(runCoRun(*suite_, *artifacts_, cfg));
    const auto batch = runCoRunBatch(*suite_, *artifacts_, cfgs, 1);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], batch[i]);
}

TEST_F(ParallelCoRunTest, RepeatedParallelRunsAgree)
{
    // Thread interleavings must not leak into results: two parallel
    // executions of the same batch are bit-identical.
    const auto cfgs = mixedBatch();
    const auto a = runCoRunBatch(*suite_, *artifacts_, cfgs, 4);
    const auto b = runCoRunBatch(*suite_, *artifacts_, cfgs, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

TEST_F(ParallelCoRunTest, ShareTrackingSurvivesParallelExecution)
{
    std::vector<CoRunConfig> cfgs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        CoRunConfig cfg;
        cfg.scheduler = SchedulerKind::FlepFfs;
        cfg.seed = seed;
        cfg.kernels = {{"NN", InputClass::Small, 2, 10000, -1},
                       {"PF", InputClass::Small, 1, 10000, -1}};
        cfg.horizonNs = 30 * ticksPerMs;
        cfg.shareWindowNs = 10 * ticksPerMs;
        cfgs.push_back(cfg);
    }
    std::vector<CoRunResult> serial;
    for (const auto &cfg : cfgs)
        serial.push_back(runCoRun(*suite_, *artifacts_, cfg));
    const auto batch = runCoRunBatch(*suite_, *artifacts_, cfgs, 4);
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], batch[i]);
}

TEST_F(ParallelCoRunTest, EmptyBatchIsEmpty)
{
    const auto out =
        runCoRunBatch(*suite_, *artifacts_, {}, 4);
    EXPECT_TRUE(out.empty());
}

TEST_F(ParallelCoRunTest, SoloCacheKeyedByGpuConfig)
{
    // Two devices must not share cached solo timings (the device-size
    // ablation runs both presets in one process).
    const double k40 = soloTurnaroundNs(
        *suite_, GpuConfig::keplerK40(), "VA", InputClass::Small);
    const double tiny = soloTurnaroundNs(
        *suite_, GpuConfig::tiny(), "VA", InputClass::Small);
    EXPECT_NE(k40, tiny);
    // Repeat lookups hit the cache and stay stable.
    EXPECT_EQ(k40, soloTurnaroundNs(*suite_, GpuConfig::keplerK40(),
                                    "VA", InputClass::Small));
    EXPECT_EQ(tiny, soloTurnaroundNs(*suite_, GpuConfig::tiny(), "VA",
                                     InputClass::Small));
}

TEST_F(ParallelCoRunTest, ConcurrentSoloLookupsAreSafe)
{
    ThreadPool pool(4);
    const auto vals = pool.parallelMap(8, [&](std::size_t i) {
        const InputClass input =
            i % 2 == 0 ? InputClass::Small : InputClass::Trivial;
        return soloTurnaroundNs(*suite_, GpuConfig::keplerK40(), "MM",
                                input);
    });
    for (std::size_t i = 2; i < vals.size(); ++i)
        EXPECT_EQ(vals[i], vals[i - 2]);
}

} // namespace
} // namespace flep
