/**
 * @file
 * The FLEP compilation engine (paper §4.1).
 *
 * Rewrites a mini-CUDA program into its preemptable form:
 *
 *  - Every __global__ kernel's per-CTA work is outlined into a
 *    __device__ task function (so early returns in the original body
 *    stay task-local), and the kernel becomes a persistent-thread
 *    worker in one of the three Figure 4 shapes: the naive temporal
 *    form (a), the L-amortized temporal form (b), or the spatial form
 *    (c) that compares the host SM id (%smid) against the flag.
 *
 *  - Every host-side launch statement is rewritten into the Figure 5
 *    protocol: report the invocation to the runtime (S1 -> S2), wait
 *    for the grant (S2 -> S3), launch the persistent wave, and wait
 *    for completion (S3 -> S1).
 *
 * The original blockIdx.x becomes the pulled task id and gridDim.x the
 * total task count, exactly the persistent-threads reinterpretation of
 * the original launch geometry.
 */

#ifndef FLEP_COMPILER_TRANSFORM_HH
#define FLEP_COMPILER_TRANSFORM_HH

#include <stdexcept>
#include <string>

#include "compiler/ast.hh"

namespace flep::minicuda
{

/** Thrown when a kernel uses constructs the pass cannot transform. */
class TransformError : public std::runtime_error
{
  public:
    explicit TransformError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Which Figure 4 shape to emit. */
enum class TransformKind
{
    TemporalNaive,     //!< Figure 4 (a): poll before every task
    TemporalAmortized, //!< Figure 4 (b): poll every L tasks
    Spatial            //!< Figure 4 (c): yield SMs below spa_P
};

/** Transformation options. */
struct TransformOptions
{
    TransformKind kind = TransformKind::Spatial;

    /** Suffix appended to transformed kernel names. */
    std::string kernelSuffix = "_flep";

    /** Suffix for the outlined per-task device function. */
    std::string taskSuffix = "_task";
};

/** Names of the runtime ABI the transformed host code calls. */
struct RuntimeAbi
{
    static constexpr const char *intercept = "flep_intercept";
    static constexpr const char *waitGrant = "flep_wait_grant";
    static constexpr const char *waitComplete = "flep_wait_complete";
    static constexpr const char *waveCtas = "flep_wave_ctas";
    static constexpr const char *flagPtr = "flep_flag_ptr";
    static constexpr const char *amortizeL = "flep_amortize_l";
    static constexpr const char *taskCounter = "flep_task_counter";
    static constexpr const char *getSmid = "flep_get_smid";
};

/**
 * Transform one __global__ kernel.
 * @return the outlined task function followed by the persistent
 *         kernel (two functions).
 * @throws TransformError on multi-dimensional grid use.
 */
std::vector<Function> transformKernel(const Function &kernel,
                                      const TransformOptions &opts);

/**
 * Transform a whole translation unit: kernels are replaced by their
 * outlined/persistent pairs and host launch statements by the
 * interception protocol.
 */
Program transformProgram(const Program &prog,
                         const TransformOptions &opts);

} // namespace flep::minicuda

#endif // FLEP_COMPILER_TRANSFORM_HH
