/**
 * @file
 * Open-loop arrival traces for cloud-style scenarios.
 *
 * The paper motivates spatial preemption with GPUs that "process a
 * large number of short queries from user-facing interactive
 * applications" (§2.2). This module generates such query streams:
 * each arrival becomes its own host process (its own MPS client), so
 * arrivals are open-loop — they do not wait for earlier queries.
 */

#ifndef FLEP_FLEP_TRACE_HH
#define FLEP_FLEP_TRACE_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "flep/experiment.hh"

namespace flep
{

/** One class of arriving requests. */
struct ArrivalProcess
{
    std::string workload;
    InputClass input = InputClass::Small;
    Priority priority = 0;

    /** Mean arrivals per simulated millisecond (Poisson). */
    double ratePerMs = 1.0;

    /** If > 0, arrivals are periodic with this interval instead. */
    Tick periodNs = 0;
};

/**
 * Generate the arrival times of one process class over [0, horizon).
 * Poisson by default; periodic when periodNs is set. A zero Poisson
 * rate yields no arrivals (useful to disable a class in sweeps);
 * periodic classes always fire at t = 0, even when periodNs exceeds
 * the horizon.
 */
std::vector<Tick> generateArrivalTimes(const ArrivalProcess &proc,
                                       Tick horizon, Rng &rng);

/**
 * Expand arrival processes into per-invocation KernelSpecs (one host
 * process each) suitable for CoRunConfig::kernels. Arrival order is
 * preserved within a class; classes are concatenated.
 */
std::vector<KernelSpec> generateTrace(
    const std::vector<ArrivalProcess> &procs, Tick horizon, Rng &rng);

/** Latency summary of the completed invocations of one trace class. */
struct TraceLatency
{
    std::size_t completed = 0;
    double meanUs = 0.0;
    double p95Us = 0.0;
    double maxUs = 0.0;
};

/**
 * Summarize turnaround latency of all invocations with the given
 * priority (trace classes are usually distinguished by priority).
 */
TraceLatency summarizeLatency(const CoRunResult &result,
                              Priority priority);

} // namespace flep

#endif // FLEP_FLEP_TRACE_HH
