/**
 * @file
 * Service-level metrics of one cluster run.
 *
 * The cluster layer's figure of merit is not raw throughput but how
 * well the fleet honors its service-level objectives under load:
 * SLO attainment (overall and per priority), queueing-delay
 * percentiles, per-device utilization and the preemption cost paid
 * to get there.
 */

#ifndef FLEP_CLUSTER_CLUSTER_METRICS_HH
#define FLEP_CLUSTER_CLUSTER_METRICS_HH

#include <cstddef>
#include <map>
#include <vector>

#include "cluster/cluster.hh"
#include "common/types.hh"

namespace flep
{

/** Aggregated service metrics of one ClusterResult. */
struct ClusterMetrics
{
    std::size_t jobs = 0;
    std::size_t completed = 0;

    /** Jobs carrying an SLO (sloNs > 0). */
    std::size_t sloJobs = 0;

    /** SLO jobs that completed within their bound. */
    std::size_t sloMet = 0;

    /** sloMet / sloJobs; 1.0 when no job carries an SLO. */
    double sloAttainment = 1.0;

    /** Attainment restricted to each priority level that has SLO
     *  jobs. */
    std::map<Priority, double> sloAttainmentByPriority;

    /**
     * NaN-safe per-priority attainment lookup: a priority class with
     * no SLO jobs (absent from the breakdown map) reports 1.0 — no
     * SLO job at that priority was late — instead of a division by
     * zero or a map miss. Callers should prefer this over indexing
     * the map directly.
     */
    double
    sloAttainmentFor(Priority p) const
    {
        auto it = sloAttainmentByPriority.find(p);
        return it == sloAttainmentByPriority.end() ? 1.0 : it->second;
    }

    /** Attainment restricted to each input class that has SLO jobs
     *  (a size-based breakdown: large jobs miss differently than
     *  trivial ones under the same placement). */
    std::map<InputClass, double> sloAttainmentByInputClass;

    /** Queueing delay (submission to placement) percentiles over the
     *  placed jobs, in microseconds. */
    double p50QueueDelayUs = 0.0;
    double p99QueueDelayUs = 0.0;

    /** Mean turnaround of the completed jobs, microseconds. */
    double meanTurnaroundUs = 0.0;

    /** Mean |placement-time predicted demand - realized execution
     *  span| over completed jobs with execNs > 0, in percent of the
     *  realized span. 0 when no job qualifies (or the oracle nailed
     *  every one). */
    double meanAbsPredictionErrorPct = 0.0;

    /** Copied from the result: busy fraction per device. */
    std::vector<double> deviceUtilization;

    /** Device-level preemptions summed over all runtimes. */
    long devicePreemptions = 0;

    /** Placements that displaced a lower-priority resident. */
    long preemptivePlacements = 0;

    // --- resilience (all zero when the layer is inert) ---

    /** Fault events that struck a live device. */
    long faultsInjected = 0;

    /** Checkpoint-requeues after fault evictions. */
    long restarts = 0;

    /** Completed cross-device migrations. */
    long migrations = 0;

    /** Jobs that exhausted their restart budget. */
    long permanentFailures = 0;

    /** Predicted execution progress destroyed by faults, summed. */
    Tick lostWorkNs = 0;

    /**
     * Useful work over all work: sum(execNs) / (sum(execNs) +
     * lostWorkNs). 1.0 in fault-free runs; degrades with the fault
     * rate as re-executed progress piles up.
     */
    double goodputFraction = 1.0;

    // --- warm spares / fault-aware placement ---

    /** Warm spares that crash events pulled into the pool. */
    long sparesActivated = 0;

    /** Mean crash-to-accepting-placements latency of the activated
     *  spares, microseconds; 0 when none activated. */
    double meanSpareActivationLatencyUs = 0.0;

    /** Placements that landed on an activated spare. */
    long jobsAbsorbedBySpares = 0;

    /** Decayed per-device fault-rate estimate at collect time
     *  (events/sec of sim time), primaries then spares — the signal
     *  fault-aware placement priced into completion scores. */
    std::vector<double> deviceFaultRatePerSec;

    // --- macro-stepping (event-coalescing fast path) ---

    /** Chunks simulated inside joint windows, fleet-wide. */
    std::uint64_t macroFastChunks = 0;

    /** Chunks simulated by ordinary per-chunk events. */
    std::uint64_t macroSlowChunks = 0;

    /** Windows opened across all devices. */
    std::uint64_t macroWindows = 0;

    /** Windows torn down early (flag writes, dispatches, faults). */
    std::uint64_t macroInvalidations = 0;

    /** Fleet-wide fastChunks / (fastChunks + slowChunks); 0 when no
     *  chunks ran. Shows where coalescing is (not) engaging. */
    double macroHitRate = 0.0;
};

/** Reduce a run's outcomes to service metrics. */
ClusterMetrics computeClusterMetrics(const ClusterResult &result);

} // namespace flep

#endif // FLEP_CLUSTER_CLUSTER_METRICS_HH
