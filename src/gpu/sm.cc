#include "gpu/sm.hh"

#include "common/logging.hh"
#include "obs/trace_recorder.hh"

namespace flep
{

Sm::Sm(SmId id, const GpuConfig &cfg)
    : id_(id),
      maxThreads_(cfg.maxThreadsPerSm),
      maxCtas_(cfg.maxCtasPerSm),
      maxRegs_(cfg.regsPerSm),
      maxSmem_(cfg.smemPerSm)
{}

void
Sm::attachTracer(TraceRecorder *tracer, int pid,
                 const char *counter_name)
{
    tracer_ = tracer;
    tracerCounter_ = tracer != nullptr
        ? tracer->counterTrack(pid, id_, counter_name)
        : TraceRecorder::invalidCounter;
}

bool
Sm::fits(const CtaFootprint &fp) const
{
    const long regs = static_cast<long>(fp.threads) * fp.regsPerThread;
    return usedCtas_ + 1 <= maxCtas_ &&
           usedThreads_ + fp.threads <= maxThreads_ &&
           usedRegs_ + regs <= maxRegs_ &&
           usedSmem_ + fp.smemBytes <= maxSmem_;
}

void
Sm::acquire(const CtaFootprint &fp)
{
    FLEP_ASSERT(fits(fp), "dispatch to SM without room (sm ", id_, ")");
    usedCtas_ += 1;
    usedThreads_ += fp.threads;
    usedRegs_ += static_cast<long>(fp.threads) * fp.regsPerThread;
    usedSmem_ += fp.smemBytes;
    ++residencyEpoch_;
    if (tracer_ != nullptr)
        tracer_->counterSample(tracerCounter_, usedCtas_);
}

void
Sm::release(const CtaFootprint &fp)
{
    usedCtas_ -= 1;
    usedThreads_ -= fp.threads;
    usedRegs_ -= static_cast<long>(fp.threads) * fp.regsPerThread;
    usedSmem_ -= fp.smemBytes;
    ++residencyEpoch_;
    FLEP_ASSERT(usedCtas_ >= 0 && usedThreads_ >= 0 && usedRegs_ >= 0 &&
                usedSmem_ >= 0,
                "resource release underflow on sm ", id_);
    if (tracer_ != nullptr)
        tracer_->counterSample(tracerCounter_, usedCtas_);
}

} // namespace flep
