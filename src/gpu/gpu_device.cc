#include "gpu/gpu_device.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"
#include "common/strings.hh"
#include "gpu/contention.hh"
#include "obs/trace_recorder.hh"

namespace flep
{

void
KernelExec::macroSync() const
{
    if (macroWindow_ != nullptr && device_ != nullptr)
        device_->macro_.sync(const_cast<KernelExec *>(this));
}

void
KernelExec::setFlag(Tick now, int value)
{
    if (value > 0)
        ++preemptGeneration_;
    flag_.hostWrite(now, value);
}

GpuDevice::GpuDevice(Simulation &sim, GpuConfig cfg, int device_index)
    : SimObject(sim, device_index == 0
                    ? std::string("gpu")
                    : format("gpu%d", device_index)),
      cfg_(cfg),
      deviceIndex_(device_index),
      tracePid_(TraceRecorder::gpuPid(device_index)),
      scheduler_(*this),
      macro_(*this),
      rng_(sim.forkRng())
{
    FLEP_ASSERT(device_index >= 0, "negative device index");
    cfg_.validate();
    // CI (and debugging sessions chasing a timing discrepancy) force
    // the slow path globally without touching experiment code.
    if (const char *env = std::getenv("FLEP_MACRO_MAX_CHUNKS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v < 0) {
            fatal("FLEP_MACRO_MAX_CHUNKS must be a non-negative "
                  "integer, got '", env, "'");
        }
        cfg_.macroStepMaxChunks = v;
    }
    macro_.setBudget(cfg_.macroStepMaxChunks);
    sms_.reserve(static_cast<std::size_t>(cfg_.numSms));
    for (SmId id = 0; id < cfg_.numSms; ++id)
        sms_.emplace_back(id, cfg_);
    // Steady state keeps roughly one in-flight event per resident CTA
    // slot; pre-size the event heap so the first launch wave does not
    // pay vector regrowth.
    sim_.events().reserve(
        static_cast<std::size_t>(cfg_.numSms) *
            static_cast<std::size_t>(cfg_.maxCtasPerSm) +
        256);
    smResidents_.resize(static_cast<std::size_t>(cfg_.numSms));
    smBusyNs_.assign(static_cast<std::size_t>(cfg_.numSms), 0);

    // Attach one occupancy counter track per SM when the simulation
    // is being traced (the recorder must be installed before the
    // device is constructed).
    if (TraceRecorder *tr = sim_.tracer()) {
        tr->setProcessName(tracePid_, deviceIndex_ == 0
                                          ? std::string("GPU")
                                          : format("GPU%d",
                                                   deviceIndex_));
        for (auto &sm : sms_) {
            tr->setThreadName(tracePid_, sm.id(),
                              format("SM%02d", sm.id()));
            sm.attachTracer(
                tr, tracePid_,
                tr->intern(format("occupancy.sm%02d", sm.id())));
        }
    }
}

GpuDevice::~GpuDevice()
{
    // Execs are user-owned and may outlive the device; sever the
    // backpointers their getters and flag writes would follow.
    for (auto &weak : allExecs_) {
        if (auto exec = weak.lock()) {
            exec->device_ = nullptr;
            exec->macroWindow_ = nullptr;
            exec->flag_.setWriteObserver({});
        }
    }
}

bool
GpuDevice::mixedResidency(SmId sm) const
{
    return smResidents_[static_cast<std::size_t>(sm)].size() > 1;
}

std::shared_ptr<KernelExec>
GpuDevice::createExec(KernelLaunchDesc desc)
{
    FLEP_ASSERT(desc.totalTasks > 0, "kernel ", desc.name,
                " has no tasks");
    if (maxActivePerSm(desc.footprint) == 0) {
        fatal("kernel ", desc.name,
              ": one CTA exceeds the resources of an SM");
    }
    auto exec = std::shared_ptr<KernelExec>(new KernelExec(
        std::move(desc), sim_.forkRng(), cfg_.pinnedWriteVisibleNs));
    const long capacity = capacityFor(exec->desc().footprint);
    exec->origBatch_ = std::max<long>(
        1, exec->totalTasks() / (capacity * cfg_.origWaveTarget));
    exec->waveEstimate_ = std::min(capacity, exec->totalTasks());
    exec->device_ = this;
    // A host flag write (setFlag) changes what the elided per-chunk
    // polls would observe, so it must tear down any open window.
    KernelExec *raw = exec.get();
    exec->flag_.setWriteObserver(
        [this, raw](Tick, int) { macro_.invalidate(raw); });
    allExecs_.push_back(exec);
    return exec;
}

void
GpuDevice::launch(std::shared_ptr<KernelExec> exec, Tick launch_latency)
{
    sim_.events().scheduleAfter(launch_latency, [this, exec]() {
        if (exec->complete())
            return;
        const long unclaimed = exec->tasksUnclaimed();
        if (unclaimed <= 0)
            return;
        long ctas = 0;
        if (exec->desc().mode == ExecMode::Original) {
            ctas = (unclaimed + exec->origBatch_ - 1) / exec->origBatch_;
        } else {
            ctas = std::min(capacityFor(exec->desc().footprint),
                            unclaimed);
        }
        scheduler_.enqueue(exec, ctas);
    });
}

void
GpuDevice::launchWave(std::shared_ptr<KernelExec> exec, long ctas,
                      Tick launch_latency)
{
    FLEP_ASSERT(exec->desc().mode == ExecMode::Persistent,
                "explicit waves only make sense for persistent kernels");
    sim_.events().scheduleAfter(launch_latency, [this, exec, ctas]() {
        if (exec->complete())
            return;
        const long n = std::min(ctas, std::max<long>(
            exec->tasksUnclaimed(), 0));
        if (n <= 0)
            return;
        scheduler_.enqueue(exec, n);
    });
}

int
GpuDevice::maxActivePerSm(const CtaFootprint &fp) const
{
    return maxActiveCtasPerSm(cfg_, fp);
}

long
GpuDevice::capacityFor(const CtaFootprint &fp) const
{
    return deviceCtaCapacity(cfg_, fp);
}

int
GpuDevice::residentCtas() const
{
    int total = 0;
    for (const auto &sm : sms_)
        total += sm.residentCtas();
    return total;
}

SmId
GpuDevice::pickSmFor(const CtaFootprint &fp) const
{
    SmId best = -1;
    int best_load = std::numeric_limits<int>::max();
    for (const auto &sm : sms_) {
        if (!sm.fits(fp))
            continue;
        if (sm.residentCtas() < best_load) {
            best_load = sm.residentCtas();
            best = sm.id();
        }
    }
    return best;
}

void
GpuDevice::dispatchCta(std::shared_ptr<KernelExec> exec, SmId sm)
{
    // Residency is about to change; defensive — enqueue() already
    // invalidated before any dispatch could happen.
    macro_.invalidateAll();
    sms_[static_cast<std::size_t>(sm)].acquire(exec->desc().footprint);
    smResidents_[static_cast<std::size_t>(sm)][exec.get()] += 1;
    exec->activeCtas_ += 1;
    if (exec->activeCtas_ == 1)
        residentExecs_.push_back(exec);
    exec->firstDispatch_ = std::min(exec->firstDispatch_, sim_.now());

    // CTAs dispatched after a preemption start with cold caches: the
    // preemptor evicted the kernel's working set.
    const bool cold = exec->preemptGeneration_ > 0;
    sim_.events().scheduleAfter(cfg_.ctaDispatchNs,
                                [this, exec, sm, cold]() {
        if (exec->desc().mode == ExecMode::Original)
            runOriginalCta(exec, sm);
        else
            persistentIterate(exec, sm, cold);
    });
}

long
GpuDevice::claimTasks(KernelExec &exec, long want, long &first)
{
    // Raw fields, not tasksUnclaimed(): the getter syncs an open
    // macro window, and claims never race one.
    const long k = std::min(
        want, exec.desc_.totalTasks - exec.tasksClaimed_);
    first = exec.tasksClaimed_;
    exec.tasksClaimed_ += k;
    return k;
}

void
GpuDevice::runTaskHook(KernelExec &exec, long first, long count)
{
    if (!exec.desc().onTask)
        return;
    for (long i = 0; i < count; ++i)
        exec.desc().onTask(first + i);
}

void
GpuDevice::runOriginalCta(std::shared_ptr<KernelExec> exec, SmId sm)
{
    long first = 0;
    const long k = claimTasks(*exec, exec->origBatch_, first);
    if (k == 0) {
        retireCta(exec, sm);
        return;
    }
    const Tick base = exec->desc().cost.sampleChunk(k, exec->rng_);
    runBodySegments(exec, sm, base, 1.0, 0,
                    [this, exec, sm, k, first]() {
        exec->tasksCompleted_ += k;
        runTaskHook(*exec, first, k);
        retireCta(exec, sm);
    });
}

GpuDevice::BodyLaunch
GpuDevice::runBodySegments(std::shared_ptr<KernelExec> exec, SmId sm,
                           Tick base_left, double extra_factor,
                           Tick lead_ns, std::function<void()> done,
                           long flight_first, long flight_k)
{
    BodySeg st;
    st.exec = std::move(exec);
    st.done = std::move(done);
    st.baseLeft = base_left;
    st.extraFactor = extra_factor;
    st.sm = sm;
    st.flightFirst = flight_first;
    st.flightK = flight_k;
    return stepBodySegment(std::move(st), lead_ns);
}

GpuDevice::BodyLaunch
GpuDevice::stepBodySegment(BodySeg st, Tick lead_ns)
{
    // One event per chunk while the SM's residency is uniform; time
    // quanta while kernels overlap, so the contention factor tracks
    // the changing CTA mix. The whole chunk state moves through the
    // segment events in `st`; nothing is re-wrapped per quantum.
    Tick base_step = st.baseLeft;
    if (cfg_.contentionQuantumNs > 0 && mixedResidency(st.sm))
        base_step = std::min(st.baseLeft, cfg_.contentionQuantumNs);

    const auto &sm_obj = sms_[static_cast<std::size_t>(st.sm)];
    const double factor =
        contentionFactor(st.exec->desc().contentionBeta,
                         sm_obj.residentCtas()) *
        st.extraFactor;
    const Tick wall = lead_ns + std::max<Tick>(
        static_cast<Tick>(static_cast<double>(base_step) * factor), 1);
    const Tick begin = sim_.now();
    st.baseLeft -= base_step;

    // Capture the flight identity before st moves into the closure;
    // the engine needs the segment reported after its event id exists.
    KernelExec *const fl_exec = st.exec.get();
    const long fl_first = st.flightFirst;
    const long fl_k = st.flightK;
    const SmId fl_sm = st.sm;
    const Tick fl_left = st.baseLeft;

    BodyLaunch launch;
    launch.end = begin + wall;
    launch.ev = sim_.events().scheduleAfter(
        wall, [this, begin, st = std::move(st)]() mutable {
            accountBusy(*st.exec, st.sm, begin, sim_.now());
            if (st.baseLeft > 0)
                stepBodySegment(std::move(st), 0);
            else
                st.done();
        });
    if (fl_first >= 0 && macro_.budget() > 0) {
        macro_.noteSegment(fl_exec, fl_first, fl_k, fl_sm, begin,
                           launch.end, fl_left, launch.ev);
    }
    return launch;
}

void
GpuDevice::persistentIterate(std::shared_ptr<KernelExec> exec, SmId sm,
                             bool cold)
{
    // Fast path: while this exec runs alone on its SMs with no
    // preemption request in sight, many iterations (across all its
    // CTAs) can be coalesced into one event. Cold restarts keep the
    // slow path so the one-off cost factor is applied per chunk.
    if (!cold && macro_.tryOpenWindow(exec, sm))
        return;

    // Figure 4 (b)/(c): poll the flag, then pull and process up to L
    // tasks. Polling is done by one thread and shared through block
    // synchronization; its PCIe cost is pinnedReadNs.
    exec->pollCount_ += 1;
    const int flag = exec->flag_.deviceRead(sim_.now());
    if (sm < flag) {
        // This CTA's host SM is being yielded.
        sim_.events().scheduleAfter(cfg_.pinnedReadNs,
                                    [this, exec, sm]() {
            retireCta(exec, sm);
        });
        return;
    }

    // Chunk claiming approximates the per-task atomic pulls of the
    // transformed kernel. Bounding the claim by a fair share of the
    // remaining tasks keeps the approximation faithful when few tasks
    // remain (or the whole kernel is tiny): real CTAs interleave
    // their pulls, so no single CTA runs away with the tail. The
    // wave-size estimate is used because CTAs of a starting wave are
    // dispatched one by one as slots free up.
    const long fair_share = std::max<long>(
        1, exec->tasksUnclaimed() / exec->waveEstimate_);
    long first = 0;
    const long k = claimTasks(
        *exec, std::min<long>(exec->desc().amortizeL, fair_share),
        first);
    if (k == 0) {
        // pull_task() returned NULL: all tasks claimed, worker exits.
        sim_.events().scheduleAfter(cfg_.pinnedReadNs + cfg_.atomicNs,
                                    [this, exec, sm]() {
            retireCta(exec, sm);
        });
        return;
    }

    const Tick base = exec->desc().cost.sampleChunk(k, exec->rng_);
    const Tick lead = cfg_.pinnedReadNs +
                      static_cast<Tick>(k) * cfg_.atomicNs;
    const double extra = cold ? cfg_.coldRestartFactor : 1.0;
    // Cold restarts never register a flight: the extra cost factor is
    // not reproduced by the virtual loop, so a window cannot open
    // while any cold chunk is in flight (its CTA is not covered).
    runBodySegments(exec, sm, base, extra, lead,
                    [this, exec, sm, k, first]() {
                        persistentChunkDone(exec, sm, k, first);
                    },
                    cold ? -1 : first, k);
}

void
GpuDevice::persistentChunkDone(std::shared_ptr<KernelExec> exec,
                               SmId sm, long k, long first)
{
    macro_.unregisterFlight(exec.get(), first);
    macro_.countSlowChunk();
    exec->tasksCompleted_ += k;
    runTaskHook(*exec, first, k);
    persistentIterate(exec, sm, false);
}

void
GpuDevice::resumeChunkSegments(std::shared_ptr<KernelExec> exec,
                               SmId sm, Tick base_left, long k,
                               long first)
{
    runBodySegments(exec, sm, base_left, 1.0, 0,
                    [this, exec, sm, k, first]() {
                        persistentChunkDone(exec, sm, k, first);
                    },
                    first, k);
}

void
GpuDevice::retireCta(std::shared_ptr<KernelExec> exec, SmId sm)
{
    sms_[static_cast<std::size_t>(sm)].release(exec->desc().footprint);
    auto &residents = smResidents_[static_cast<std::size_t>(sm)];
    if (--residents[exec.get()] == 0)
        residents.erase(exec.get());
    exec->activeCtas_ -= 1;
    FLEP_ASSERT(exec->activeCtas_ >= 0, "CTA count underflow for ",
                exec->name());
    if (exec->activeCtas_ == 0) {
        auto it = std::find_if(
            residentExecs_.begin(), residentExecs_.end(),
            [&exec](const std::shared_ptr<KernelExec> &p) {
                return p.get() == exec.get();
            });
        FLEP_ASSERT(it != residentExecs_.end(),
                    "retiring exec missing from resident list");
        residentExecs_.erase(it);
    }

    if (exec->activeCtas_ == 0 && !exec->complete()) {
        if (exec->tasksCompleted_ == exec->totalTasks()) {
            exec->completed_ = true;
            exec->completionTick_ = sim_.now();
            macro_.onExecComplete(exec.get());
            if (exec->onComplete)
                exec->onComplete(*exec, sim_.now());
        } else if (scheduler_.undispatchedCtas(exec.get()) == 0) {
            // Preempted off the GPU with work remaining: the host must
            // relaunch to resume.
            if (exec->onDrained)
                exec->onDrained(*exec, sim_.now());
        }
    }

    scheduler_.tryDispatch();
}

void
GpuDevice::accountBusy(KernelExec &exec, SmId sm, Tick begin, Tick end)
{
    exec.busySlotNs_ += end - begin;
    smBusyNs_[static_cast<std::size_t>(sm)] += end - begin;
    if (onSlotBusy)
        onSlotBusy(exec.desc().process, begin, end);
    if (onSlotBusyDetailed)
        onSlotBusyDetailed(exec, sm, begin, end);
}

} // namespace flep
