/**
 * @file
 * Top-level simulation context: owns the event queue and a seed-derived
 * random stream, so one Simulation object is one reproducible run.
 */

#ifndef FLEP_SIM_SIMULATION_HH
#define FLEP_SIM_SIMULATION_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace flep
{

/**
 * One simulated run. All components of a run (GPU device, host
 * processes, the FLEP runtime) share the Simulation's event queue and
 * derive their randomness from its root RNG.
 */
class Simulation
{
  public:
    /** @param seed root seed; equal seeds replay the run exactly. */
    explicit Simulation(std::uint64_t seed = 1);

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Shared event queue. */
    EventQueue &events() { return events_; }

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /** Derive an independent random stream for a component. */
    Rng forkRng() { return rootRng_.fork(); }

    /** Run until the event queue drains. @return final time. */
    Tick run() { return events_.run(); }

    /** Run events up to `limit` ticks. */
    Tick runUntil(Tick limit) { return events_.runUntil(limit); }

  private:
    EventQueue events_;
    Rng rootRng_;
};

} // namespace flep

#endif // FLEP_SIM_SIMULATION_HH
