/** @file Tests for the cluster-wide job queue ordering. */

#include <gtest/gtest.h>

#include "cluster/job_queue.hh"

namespace flep
{
namespace
{

ClusterJob
job(int id, Priority priority, Tick arrival)
{
    ClusterJob j;
    j.id = id;
    j.workload = "VA";
    j.priority = priority;
    j.arrivalNs = arrival;
    return j;
}

TEST(JobQueue, EmptyBehaviour)
{
    JobQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.sizeAt(0), 0u);
}

TEST(JobQueue, HigherPriorityFirst)
{
    JobQueue q;
    q.push(job(0, 0, 0));
    q.push(job(1, 5, 100));
    q.push(job(2, 2, 50));
    EXPECT_EQ(q.front().id, 1);
    q.popFront();
    EXPECT_EQ(q.front().id, 2);
    q.popFront();
    EXPECT_EQ(q.front().id, 0);
}

TEST(JobQueue, FifoWithinPriority)
{
    JobQueue q;
    q.push(job(3, 1, 200));
    q.push(job(1, 1, 100));
    q.push(job(2, 1, 100));
    // Earlier arrival first; id breaks the tie at equal arrival.
    EXPECT_EQ(q.front().id, 1);
    q.popFront();
    EXPECT_EQ(q.front().id, 2);
    q.popFront();
    EXPECT_EQ(q.front().id, 3);
}

TEST(JobQueue, SizeAtCountsPerPriority)
{
    JobQueue q;
    q.push(job(0, 0, 0));
    q.push(job(1, 0, 10));
    q.push(job(2, 5, 20));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.sizeAt(0), 2u);
    EXPECT_EQ(q.sizeAt(5), 1u);
    EXPECT_EQ(q.sizeAt(3), 0u);
}

} // namespace
} // namespace flep
