/**
 * @file
 * Self-performance benchmark: how fast is the reproduction itself?
 *
 * Two measurements, written to BENCH_selfperf.json (override the path
 * with FLEP_SELFPERF_OUT) so successive PRs have a perf trajectory to
 * compare against:
 *
 *  1. event-queue throughput — schedule/run cycles of randomly timed
 *     events, reported as events per second (best of several passes);
 *  2. a representative fig08-style pair sweep run serially
 *     (1 thread) and through the parallel batch runner, reported as
 *     wall milliseconds plus the resulting speedup.
 *
 * JSON schema (all numbers):
 *   schema_version        4
 *   events_per_sec        event-queue micro throughput
 *   sweep_cells           configs in the sweep (pairs x schedulers)
 *   sweep_reps            repetitions per config (FLEP_REPS)
 *   sweep_serial_ms       wall time, 1 thread
 *   sweep_parallel_ms     wall time, `threads` workers
 *   threads               parallel worker count (FLEP_THREADS or
 *                         hardware concurrency)
 *   hardware_concurrency  std::thread::hardware_concurrency() on the
 *                         machine that produced the numbers, so a
 *                         parallel_speedup near 1 on a 1-core runner
 *                         is legible as a machine limit
 *   parallel_speedup      sweep_serial_ms / sweep_parallel_ms
 *   trace_off_ms          serial sweep, tracing disabled (min over
 *                         the timing passes, see below)
 *   trace_on_ms           the same serial sweep recording into
 *                         in-memory binary-backend trace recorders
 *   trace_overhead_pct    100 * (trace_on / trace_off - 1)
 *   trace_events          events recorded across the traced sweep
 *   trace_events_per_sec  trace_events / trace_on seconds
 *
 * Added in schema 4 — the binary ring-buffer trace backend. Schema 6
 * removed the record-time-formatting legacy backend and with it the
 * trace_legacy_on_ms / trace_legacy_overhead_pct fields. The tracing
 * walls (off, on) are each the minimum over five passes of the
 * identical deterministic sweep, so a noise spike on one pass cannot
 * masquerade as tracing overhead.
 *
 * Added in schema 3 — macro-stepped persistent execution, measured on
 * a solo persistent kernel run with the fast path off and on (results
 * are checked bit-identical before anything is reported). The primary
 * workload uses a uniform task cost (cv = 0, PF-like kernels): every
 * run simulates the identical chunk sequence, so the ratio isolates
 * what macro-stepping actually removes — per-chunk event scheduling.
 * A stochastic variant (cv = 0.2) is recorded alongside; its ratio is
 * intrinsically smaller because both paths must draw the same
 * per-chunk RNG samples, and that shared work bounds the speedup:
 *   solo_macro_off_ms         wall time, macroStepMaxChunks = 0
 *   solo_macro_on_ms          wall time, default chunk budget
 *   solo_macro_speedup        off_ms / on_ms
 *   solo_sim_events_off       events executed by the slow-path run
 *   solo_sim_events_on        events executed by the fast-path run
 *   solo_chunks_per_sec_off   task chunks simulated per wall second
 *   solo_chunks_per_sec_on    same, fast path (the headline number)
 *   solo_stoch_off_ms         stochastic-cost variant, fast path off
 *   solo_stoch_on_ms          stochastic-cost variant, fast path on
 *   solo_stoch_speedup        off_ms / on_ms (RNG-bound)
 *   macro_hit_rate            fast chunks / all chunks, fast-path run
 *
 * Added in schema 7 — joint macro-step windows over co-runs. The
 * workload puts two persistent kernels on every SM (2 CTAs of A, 1 of
 * B), so the slow path slices every chunk into contention time quanta
 * and the fast path must coalesce at segment granularity across both
 * execs. Results are checked bit-identical before being reported:
 *   corun_macro_off_ms        wall time, macroStepMaxChunks = 0
 *   corun_macro_on_ms         wall time, default chunk budget
 *   corun_macro_speedup       off_ms / on_ms (CI enforces a floor)
 *   corun_sim_events_off      events executed by the slow-path run
 *   corun_sim_events_on       events executed by the fast-path run
 *   corun_chunks_per_sec_off  task chunks simulated per wall second
 *   corun_chunks_per_sec_on   same, fast path
 *   corun_macro_hit_rate      fast chunks / all chunks, fast-path run
 *
 * Added in schema 5 — a contended ThreadPool cell: far more tasks
 * than workers, so the queue, the condition variable and the future
 * handoff are all exercised under contention rather than the one-
 * task-per-worker pattern the sweep produces. The worker count is
 * forced to at least two so the contended path runs even on a
 * single-core machine (where the pool would otherwise execute
 * inline):
 *   pool_contended_threads       worker count used
 *   pool_contended_tasks         tasks pushed through the pool
 *   pool_contended_ms            wall time, best of the passes
 *   pool_contended_tasks_per_sec tasks / best wall second
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "common/bench_util.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "gpu/gpu_device.hh"
#include "obs/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

using namespace flep;
using namespace flep::benchutil;

namespace
{

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::milli>(dt).count();
}

/** Best-of-passes event-queue throughput in events/sec. */
double
eventsPerSec()
{
    constexpr std::size_t events = 200000;
    constexpr int passes = 5;
    Rng rng(7);
    std::vector<Tick> times(events);
    for (auto &t : times)
        t = static_cast<Tick>(rng.uniformInt(0, 100000000));

    double best = 0.0;
    for (int p = 0; p < passes; ++p) {
        EventQueue q;
        long long acc = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (Tick t : times)
            q.schedule(t, [&acc]() { ++acc; });
        q.run();
        const double ms = wallMs(t0);
        if (acc != static_cast<long long>(events))
            fatal("event-queue self-check failed");
        best = std::max(best,
                        static_cast<double>(events) / (ms / 1000.0));
    }
    return best;
}

/** One solo persistent macro-stepping measurement. */
struct SoloPerf
{
    double ms = 0.0;
    std::uint64_t simEvents = 0;
    std::uint64_t chunks = 0;
    double hitRate = 0.0;
    Tick completionTick = 0;
    Tick busySlotNs = 0;
    long polls = 0;
};

/**
 * Run a large solo persistent kernel — the macro-stepping fast path's
 * best case — with the given chunk budget; best wall time of `passes`.
 */
SoloPerf
soloPersistentPerf(long budget, int passes, double cv)
{
    SoloPerf best;
    for (int p = 0; p < passes; ++p) {
        Simulation sim(101);
        GpuConfig cfg = GpuConfig::keplerK40();
        cfg.macroStepMaxChunks = budget;
        GpuDevice gpu(sim, cfg);
        KernelLaunchDesc d;
        d.name = "solo";
        d.totalTasks = 5000000;
        d.footprint = CtaFootprint{256, 32, 0};
        d.cost = TaskCostModel(1000.0, cv);
        d.contentionBeta = 0.05;
        d.mode = ExecMode::Persistent;
        d.amortizeL = 50;
        auto exec = gpu.createExec(d);

        const auto t0 = std::chrono::steady_clock::now();
        gpu.launch(exec, cfg.kernelLaunchNs);
        sim.run();
        const double ms = wallMs(t0);

        if (!exec->complete() ||
            exec->tasksCompleted() != d.totalTasks)
            fatal("solo macro bench self-check failed");

        SoloPerf r;
        r.ms = ms;
        r.simEvents = sim.events().executedCount();
        r.chunks = gpu.macroEngine().fastChunks() +
                   gpu.macroEngine().slowChunks();
        r.hitRate = r.chunks == 0
            ? 0.0
            : static_cast<double>(gpu.macroEngine().fastChunks()) /
                  static_cast<double>(r.chunks);
        r.completionTick = exec->completionTick();
        r.busySlotNs = exec->busySlotTime();
        r.polls = exec->pollCount();
        // Deterministic run: every pass simulates identically, only
        // wall time varies. Keep the best.
        if (p == 0)
            best = r;
        else
            best.ms = std::min(best.ms, r.ms);
    }
    return best;
}

/**
 * The shared-SM co-run macro measurement: two persistent kernels with
 * waves sized so every SM hosts CTAs of both (2 of A, 1 of B). The
 * slow path slices each chunk into contention quanta; the joint
 * window must absorb both execs and still win. Best of `passes`.
 */
SoloPerf
coRunPersistentPerf(long budget, int passes)
{
    SoloPerf best;
    for (int p = 0; p < passes; ++p) {
        Simulation sim(103);
        GpuConfig cfg = GpuConfig::keplerK40();
        cfg.macroStepMaxChunks = budget;
        GpuDevice gpu(sim, cfg);
        KernelLaunchDesc da;
        da.name = "corunA";
        da.totalTasks = 2000000;
        da.footprint = CtaFootprint{256, 32, 0};
        da.cost = TaskCostModel(1000.0, 0.0);
        da.contentionBeta = 0.05;
        da.mode = ExecMode::Persistent;
        da.amortizeL = 50;
        KernelLaunchDesc db = da;
        db.name = "corunB";
        db.totalTasks = 1000000;
        db.cost = TaskCostModel(1400.0, 0.0);
        db.contentionBeta = 0.08;
        db.amortizeL = 40;
        auto a = gpu.createExec(da);
        auto b = gpu.createExec(db);

        const auto t0 = std::chrono::steady_clock::now();
        gpu.launchWave(a, 2L * cfg.numSms, cfg.kernelLaunchNs);
        gpu.launchWave(b, cfg.numSms, cfg.kernelLaunchNs + 500);
        sim.run();
        const double ms = wallMs(t0);

        if (!a->complete() || !b->complete() ||
            a->tasksCompleted() != da.totalTasks ||
            b->tasksCompleted() != db.totalTasks)
            fatal("co-run macro bench self-check failed");

        SoloPerf r;
        r.ms = ms;
        r.simEvents = sim.events().executedCount();
        r.chunks = gpu.macroEngine().fastChunks() +
                   gpu.macroEngine().slowChunks();
        r.hitRate = gpu.macroEngine().hitRate();
        r.completionTick = std::max(a->completionTick(),
                                    b->completionTick());
        r.busySlotNs = a->busySlotTime() + b->busySlotTime();
        r.polls = a->pollCount() + b->pollCount();
        if (p == 0)
            best = r;
        else
            best.ms = std::min(best.ms, r.ms);
    }
    return best;
}

/**
 * Contended-pool throughput: `tasks` small deterministic event-queue
 * runs pushed through a pool of `threads` workers, tasks >> threads.
 * Returns the best wall milliseconds over `passes`.
 */
double
poolContendedMs(int threads, std::size_t tasks, int passes)
{
    constexpr std::size_t kEventsPerTask = 20000;
    double best_ms = 1e300;
    for (int p = 0; p < passes; ++p) {
        ThreadPool pool(threads);
        const auto t0 = std::chrono::steady_clock::now();
        const auto sums =
            pool.parallelMap(tasks, [](std::size_t i) {
                EventQueue q;
                long long acc = 0;
                Rng rng(1234 + static_cast<std::uint64_t>(i));
                for (std::size_t e = 0; e < kEventsPerTask; ++e) {
                    q.schedule(static_cast<Tick>(
                                   rng.uniformInt(0, 1000000)),
                               [&acc]() { ++acc; });
                }
                q.run();
                return acc;
            });
        const double ms = wallMs(t0);
        for (long long sum : sums) {
            if (sum != static_cast<long long>(kEventsPerTask))
                fatal("contended pool self-check failed");
        }
        best_ms = std::min(best_ms, ms);
    }
    return best_ms;
}

/** Eight representative fig08-style cells (pair x {MPS, HPF}). */
std::vector<CoRunConfig>
sweepCells()
{
    std::vector<CoRunConfig> cells;
    const auto pairs = priorityPairs();
    for (std::size_t i = 0; i < pairs.size() && cells.size() < 8;
         i += 7) {
        const auto &[low_large, high_small] = pairs[i];
        CoRunConfig cfg;
        cfg.kernels = {{low_large, InputClass::Large, 0, 0, 1},
                       {high_small, InputClass::Small, 5, 50000, 1}};
        cfg.scheduler = SchedulerKind::Mps;
        cells.push_back(cfg);
        cfg.scheduler = SchedulerKind::FlepHpf;
        cells.push_back(cfg);
    }
    return cells;
}

} // namespace

int
main()
{
    BenchEnv env;
    printHeader("Self-perf", "simulator throughput and sweep scaling");

    const double ev_per_sec = eventsPerSec();
    std::printf("event queue: %.0f events/sec\n", ev_per_sec);

    // Macro-stepped persistent execution, off vs on. The env override
    // exists to force the slow path globally; neutralize it here so
    // the comparison always measures both paths.
    ::unsetenv("FLEP_MACRO_MAX_CHUNKS");
    const long budget_on = GpuConfig::keplerK40().macroStepMaxChunks;
    const SoloPerf solo_off = soloPersistentPerf(0, 2, 0.0);
    const SoloPerf solo_on = soloPersistentPerf(budget_on, 2, 0.0);
    if (solo_on.completionTick != solo_off.completionTick ||
        solo_on.busySlotNs != solo_off.busySlotNs ||
        solo_on.polls != solo_off.polls)
        fatal("macro-stepped run diverged from the slow path");
    const SoloPerf stoch_off = soloPersistentPerf(0, 2, 0.2);
    const SoloPerf stoch_on = soloPersistentPerf(budget_on, 2, 0.2);
    if (stoch_on.completionTick != stoch_off.completionTick ||
        stoch_on.busySlotNs != stoch_off.busySlotNs ||
        stoch_on.polls != stoch_off.polls)
        fatal("stochastic macro run diverged from the slow path");
    const double solo_speedup = solo_off.ms / solo_on.ms;
    const double stoch_speedup = stoch_off.ms / stoch_on.ms;
    const double chunks_sec_off =
        static_cast<double>(solo_off.chunks) / (solo_off.ms / 1000.0);
    const double chunks_sec_on =
        static_cast<double>(solo_on.chunks) / (solo_on.ms / 1000.0);
    std::printf("macro-step solo (uniform cost): off %.0f ms "
                "(%llu events), on %.0f ms (%llu events), "
                "speedup %.2fx, hit rate %.3f\n",
                solo_off.ms,
                static_cast<unsigned long long>(solo_off.simEvents),
                solo_on.ms,
                static_cast<unsigned long long>(solo_on.simEvents),
                solo_speedup, solo_on.hitRate);
    std::printf("macro-step solo (stochastic cost): off %.0f ms, "
                "on %.0f ms, speedup %.2fx\n",
                stoch_off.ms, stoch_on.ms, stoch_speedup);

    // Joint windows over a shared-SM co-run: the workload ISSUE 9 is
    // about — every SM hosts two kernels, the slow path runs quantum-
    // sliced segments, and a window spans both execs.
    const SoloPerf corun_off = coRunPersistentPerf(0, 2);
    const SoloPerf corun_on = coRunPersistentPerf(budget_on, 2);
    if (corun_on.completionTick != corun_off.completionTick ||
        corun_on.busySlotNs != corun_off.busySlotNs ||
        corun_on.polls != corun_off.polls)
        fatal("co-run macro-stepped run diverged from the slow path");
    const double corun_speedup = corun_off.ms / corun_on.ms;
    const double corun_chunks_sec_off =
        static_cast<double>(corun_off.chunks) /
        (corun_off.ms / 1000.0);
    const double corun_chunks_sec_on =
        static_cast<double>(corun_on.chunks) / (corun_on.ms / 1000.0);
    std::printf("macro-step co-run (shared SMs): off %.0f ms "
                "(%llu events), on %.0f ms (%llu events), "
                "speedup %.2fx, hit rate %.3f\n",
                corun_off.ms,
                static_cast<unsigned long long>(corun_off.simEvents),
                corun_on.ms,
                static_cast<unsigned long long>(corun_on.simEvents),
                corun_speedup, corun_on.hitRate);

    // Expand cells the same way BenchEnv::sweep does, then time the
    // identical batch serially and across the pool.
    const auto cells = sweepCells();
    std::vector<CoRunConfig> runs;
    for (const auto &cell : cells) {
        for (int r = 0; r < env.reps(); ++r) {
            CoRunConfig run = cell;
            run.seed = cell.seed +
                       static_cast<std::uint64_t>(r) * 7919;
            runs.push_back(run);
        }
    }

    const auto t_serial = std::chrono::steady_clock::now();
    const auto serial =
        runCoRunBatch(env.suite(), env.artifacts(), runs, 1);
    const double serial_ms = wallMs(t_serial);

    const auto t_par = std::chrono::steady_clock::now();
    const auto parallel =
        runCoRunBatch(env.suite(), env.artifacts(), runs,
                      env.threads());
    const double parallel_ms = wallMs(t_par);

    // Bit-identical results regardless of thread count.
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (serial[i].makespanNs != parallel[i].makespanNs)
            fatal("parallel batch diverged from serial at run ", i);
    }

    const double speedup = serial_ms / parallel_ms;
    std::printf("sweep (%zu sims): serial %.0f ms, %d-thread %.0f ms, "
                "speedup %.2fx\n",
                runs.size(), serial_ms, env.threads(), parallel_ms,
                speedup);

    // Tracing overhead: the identical serial sweep, each run recording
    // into its own in-memory recorder. This is the number the "tracing
    // must be cheap when off, affordable when on" goal is judged by.
    // Every mode is timed as the min over kTracePasses passes — the
    // sweeps are deterministic, so any pass-to-pass spread is
    // scheduler noise and the minimum is the real cost (single-pass
    // deltas on a busy 1-core runner swing tens of percent either
    // way).
    constexpr int kTracePasses = 5;
    auto tracedSweep = [&](double &ms, std::size_t &events) {
        ms = 1e300;
        for (int pass = 0; pass < kTracePasses; ++pass) {
            std::vector<CoRunConfig> traced(runs);
            std::deque<TraceRecorder> recorders;
            for (auto &run : traced) {
                recorders.emplace_back();
                run.tracer = &recorders.back();
            }
            const auto t0 = std::chrono::steady_clock::now();
            const auto res =
                runCoRunBatch(env.suite(), env.artifacts(), traced, 1);
            ms = std::min(ms, wallMs(t0));
            for (std::size_t i = 0; i < serial.size(); ++i) {
                if (serial[i].makespanNs != res[i].makespanNs)
                    fatal("traced batch diverged from serial at run ",
                          i);
            }
            events = 0;
            for (const auto &tr : recorders)
                events += tr.eventCount();
        }
    };

    double trace_off_ms = serial_ms;
    for (int pass = 1; pass < kTracePasses; ++pass) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto res =
            runCoRunBatch(env.suite(), env.artifacts(), runs, 1);
        trace_off_ms = std::min(trace_off_ms, wallMs(t0));
        for (std::size_t i = 0; i < serial.size(); ++i) {
            if (serial[i].makespanNs != res[i].makespanNs)
                fatal("untraced re-run diverged from serial at run ",
                      i);
        }
    }

    double traced_ms = 0.0;
    std::size_t trace_events = 0;
    tracedSweep(traced_ms, trace_events);
    const double trace_overhead_pct =
        (traced_ms / trace_off_ms - 1.0) * 100.0;
    const double trace_events_per_sec =
        static_cast<double>(trace_events) / (traced_ms / 1000.0);
    std::printf("tracing: off %.0f ms, on %.0f ms (%+.1f%%), "
                "%zu events\n",
                trace_off_ms, traced_ms, trace_overhead_pct,
                trace_events);

    // Contended pool: force >= 2 workers so the queue path runs even
    // where hardware concurrency is 1, and push 16 tasks per worker.
    const int pool_threads = std::max(2, env.threads());
    const std::size_t pool_tasks =
        16 * static_cast<std::size_t>(pool_threads);
    const double pool_ms = poolContendedMs(pool_threads, pool_tasks, 3);
    const double pool_tasks_per_sec =
        static_cast<double>(pool_tasks) / (pool_ms / 1000.0);
    std::printf("contended pool: %zu tasks on %d workers, %.0f ms, "
                "%.0f tasks/sec\n",
                pool_tasks, pool_threads, pool_ms,
                pool_tasks_per_sec);

    const char *out = std::getenv("FLEP_SELFPERF_OUT");
    const char *path = out != nullptr ? out : "BENCH_selfperf.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write ", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 7,\n"
                 "  \"events_per_sec\": %.0f,\n"
                 "  \"sweep_cells\": %zu,\n"
                 "  \"sweep_reps\": %d,\n"
                 "  \"sweep_serial_ms\": %.1f,\n"
                 "  \"sweep_parallel_ms\": %.1f,\n"
                 "  \"threads\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"parallel_speedup\": %.3f,\n"
                 "  \"trace_off_ms\": %.1f,\n"
                 "  \"trace_on_ms\": %.1f,\n"
                 "  \"trace_overhead_pct\": %.2f,\n"
                 "  \"trace_events\": %zu,\n"
                 "  \"trace_events_per_sec\": %.0f,\n"
                 "  \"solo_macro_off_ms\": %.1f,\n"
                 "  \"solo_macro_on_ms\": %.1f,\n"
                 "  \"solo_macro_speedup\": %.2f,\n"
                 "  \"solo_sim_events_off\": %llu,\n"
                 "  \"solo_sim_events_on\": %llu,\n"
                 "  \"solo_chunks_per_sec_off\": %.0f,\n"
                 "  \"solo_chunks_per_sec_on\": %.0f,\n"
                 "  \"solo_stoch_off_ms\": %.1f,\n"
                 "  \"solo_stoch_on_ms\": %.1f,\n"
                 "  \"solo_stoch_speedup\": %.2f,\n"
                 "  \"macro_hit_rate\": %.4f,\n"
                 "  \"corun_macro_off_ms\": %.1f,\n"
                 "  \"corun_macro_on_ms\": %.1f,\n"
                 "  \"corun_macro_speedup\": %.2f,\n"
                 "  \"corun_sim_events_off\": %llu,\n"
                 "  \"corun_sim_events_on\": %llu,\n"
                 "  \"corun_chunks_per_sec_off\": %.0f,\n"
                 "  \"corun_chunks_per_sec_on\": %.0f,\n"
                 "  \"corun_macro_hit_rate\": %.4f,\n"
                 "  \"pool_contended_threads\": %d,\n"
                 "  \"pool_contended_tasks\": %zu,\n"
                 "  \"pool_contended_ms\": %.1f,\n"
                 "  \"pool_contended_tasks_per_sec\": %.0f\n"
                 "}\n",
                 ev_per_sec, cells.size(), env.reps(), serial_ms,
                 parallel_ms, env.threads(),
                 std::thread::hardware_concurrency(), speedup,
                 trace_off_ms, traced_ms, trace_overhead_pct,
                 trace_events,
                 trace_events_per_sec, solo_off.ms, solo_on.ms,
                 solo_speedup,
                 static_cast<unsigned long long>(solo_off.simEvents),
                 static_cast<unsigned long long>(solo_on.simEvents),
                 chunks_sec_off, chunks_sec_on, stoch_off.ms,
                 stoch_on.ms, stoch_speedup, solo_on.hitRate,
                 corun_off.ms, corun_on.ms, corun_speedup,
                 static_cast<unsigned long long>(corun_off.simEvents),
                 static_cast<unsigned long long>(corun_on.simEvents),
                 corun_chunks_sec_off, corun_chunks_sec_on,
                 corun_on.hitRate, pool_threads, pool_tasks, pool_ms,
                 pool_tasks_per_sec);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
