/**
 * @file
 * Cluster resilience sweep: fault rate x placement x migration.
 *
 * One sweep over an open-loop two-class mix (batch + interactive with
 * turnaround SLOs) under seed-deterministic fault injection
 * (generateFaultPlan: Poisson device crashes and transient stalls).
 * Per cell: SLO attainment, completion accounting, faults injected,
 * checkpoint-requeues, migrations, permanent failures, lost work and
 * the goodput fraction. Results go to stdout and
 * BENCH_resilience.json (override the path with FLEP_RESILIENCE_OUT).
 *
 * Two contracts this bench exists to exercise end to end:
 *
 *  1. No job is silently lost: every submitted job either completes
 *     (possibly after checkpoint-requeue onto a surviving device) or
 *     is accounted a permanent failure. Asserted internally before
 *     any output is written.
 *  2. Determinism: fault plans are data fixed before the run and all
 *     randomness derives from per-run seeds, so the JSON is
 *     bit-identical at any FLEP_THREADS setting (CI cmp's a
 *     1-thread run against a 4-thread run).
 *
 * The experiment extends the paper's premise: FLEP's drain-boundary
 * preemption leaves a job's state as a handful of integers, which is
 * what makes checkpoints free and fault recovery a requeue instead of
 * a cold restart from zero.
 *
 * Environment knobs (see bench/common/bench_util.hh for the shared
 * ones): FLEP_REPS, FLEP_THREADS, plus
 *   FLEP_CLUSTER_JOBS    target jobs per cell (default 24),
 *   FLEP_RESILIENCE_OUT  output path (default BENCH_resilience.json).
 */

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/arrival_gen.hh"
#include "cluster/cluster.hh"
#include "cluster/cluster_metrics.hh"
#include "common/bench_util.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "resilience/fault_plan.hh"

namespace flep
{
namespace
{

using benchutil::BenchEnv;
using benchutil::envLong;

constexpr Priority kBatchPrio = 0;
constexpr Priority kInteractivePrio = 5;
constexpr int kDevices = 3;
constexpr double kLoad = 0.9;

struct Cell
{
    double faultRatePerSec;
    PlacementKind placement;
    bool migration;
};

/** Per-cell aggregates: rates averaged, event counts summed. */
struct CellStats
{
    double sloHigh = 0.0;
    double sloAll = 0.0;
    double meanTurnUs = 0.0;
    double goodput = 0.0;
    std::size_t jobs = 0;
    std::size_t completed = 0;
    long faultsInjected = 0;
    long restarts = 0;
    long migrations = 0;
    long permanentFailures = 0;
    Tick lostWorkNs = 0;
};

struct Mix
{
    std::vector<ArrivalClassSpec> classes;
    std::vector<double> weights;
    double meanServiceNs = 0.0;
};

double
predictJobNs(const BenchEnv &env, const ArrivalClassSpec &cls)
{
    const InputSpec in =
        env.suite().byName(cls.workload).input(cls.input);
    return env.artifacts().models.at(cls.workload).predictNs(in) *
           cls.repeats;
}

/**
 * Batch jobs run two invocations so a mid-job drain boundary exists:
 * a fault striking between them recovers the first invocation from
 * the checkpoint instead of re-running it.
 */
Mix
buildMix(const BenchEnv &env)
{
    Mix mix;
    mix.classes.resize(2);
    ArrivalClassSpec &batch = mix.classes[0];
    batch.workload = "VA";
    batch.input = InputClass::Large;
    batch.priority = kBatchPrio;
    batch.sloNs = 0;
    batch.repeats = 2;

    ArrivalClassSpec &interactive = mix.classes[1];
    interactive.workload = "NN";
    interactive.input = InputClass::Small;
    interactive.priority = kInteractivePrio;
    interactive.sloNs =
        static_cast<Tick>(6.0 * predictJobNs(env, interactive));

    mix.weights = {0.5, 0.5};
    mix.meanServiceNs = 0.0;
    for (std::size_t i = 0; i < mix.classes.size(); ++i)
        mix.meanServiceNs +=
            mix.weights[i] * predictJobNs(env, mix.classes[i]);
    return mix;
}

ClusterConfig
cellConfig(const BenchEnv &env, const Mix &mix, const Cell &cell,
           long target_jobs, std::uint64_t seed)
{
    const double svc_ms = mix.meanServiceNs / 1e6;
    const double rate_per_ms =
        kLoad * static_cast<double>(kDevices) / svc_ms;

    ClusterArrivalConfig acfg;
    acfg.pattern = ArrivalPattern::Poisson;
    acfg.horizonNs = static_cast<Tick>(
        static_cast<double>(target_jobs) / rate_per_ms * 1e6);
    acfg.seed = seed;
    acfg.classes = mix.classes;
    for (std::size_t i = 0; i < acfg.classes.size(); ++i)
        acfg.classes[i].ratePerMs = mix.weights[i] * rate_per_ms;

    ClusterConfig cfg;
    cfg.gpu = env.gpu();
    cfg.devices = kDevices;
    cfg.placement = cell.placement;
    cfg.deviceScheduler = SchedulerKind::FlepHpf;
    cfg.deviceCapacity = 2;
    cfg.jobs = generateClusterJobs(acfg);
    cfg.horizonNs = 0;
    cfg.seed = seed;

    cfg.resilience.checkpoints = true;
    cfg.resilience.migration.enabled = cell.migration;
    if (cell.faultRatePerSec > 0.0) {
        // Stall-heavy split: crashes are permanent, so an all-crash
        // plan at these rates could kill every device and strand the
        // queue. Faults may fire well past the arrival window while
        // requeued work drains, hence the widened horizon.
        FaultPlanConfig fcfg;
        fcfg.devices = kDevices;
        fcfg.horizonNs = acfg.horizonNs * 3;
        fcfg.seed = seed ^ 0x9e3779b97f4a7c15ull;
        fcfg.crashRatePerSec = 0.2 * cell.faultRatePerSec;
        fcfg.stallRatePerSec = 0.8 * cell.faultRatePerSec;
        cfg.resilience.faults = generateFaultPlan(fcfg);
        // Guarantee a survivor: if the drawn plan crashes every
        // device the cluster dies and queued jobs are stranded by
        // design, which would void the no-lost-job contract this
        // bench asserts. Drop the latest crash (a pure function of
        // the plan, so determinism holds).
        std::vector<bool> crashed(kDevices, false);
        for (const FaultEvent &ev : cfg.resilience.faults) {
            if (ev.kind == FaultKind::DeviceCrash)
                crashed[static_cast<std::size_t>(ev.device)] = true;
        }
        bool all = true;
        for (bool c : crashed)
            all = all && c;
        if (all) {
            auto &plan = cfg.resilience.faults;
            for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
                if (it->kind == FaultKind::DeviceCrash) {
                    plan.erase(std::next(it).base());
                    break;
                }
            }
        }
    }
    return cfg;
}

CellStats
aggregate(const std::vector<ClusterResult> &reps)
{
    CellStats s;
    for (const auto &res : reps) {
        const ClusterMetrics m = computeClusterMetrics(res);
        auto high = m.sloAttainmentByPriority.find(kInteractivePrio);
        s.sloHigh += high == m.sloAttainmentByPriority.end()
            ? 1.0
            : high->second;
        s.sloAll += m.sloAttainment;
        s.meanTurnUs += m.meanTurnaroundUs;
        s.goodput += m.goodputFraction;
        s.jobs += m.jobs;
        s.completed += m.completed;
        s.faultsInjected += m.faultsInjected;
        s.restarts += m.restarts;
        s.migrations += m.migrations;
        s.permanentFailures += m.permanentFailures;
        s.lostWorkNs += m.lostWorkNs;
    }
    const auto n = static_cast<double>(reps.size());
    s.sloHigh /= n;
    s.sloAll /= n;
    s.meanTurnUs /= n;
    s.goodput /= n;
    return s;
}

/** Contract 1: no job may end the run unaccounted. */
bool
checkAccounting(const std::vector<ClusterResult> &results)
{
    bool ok = true;
    for (std::size_t r = 0; r < results.size(); ++r) {
        for (const JobOutcome &o : results[r].outcomes) {
            if (!o.completed && !o.failedPermanently) {
                std::fprintf(stderr,
                             "FATAL: run %zu job %d neither completed "
                             "nor failed permanently (placed=%d "
                             "device=%d restarts=%d)\n",
                             r, o.job.id, o.placed ? 1 : 0, o.device,
                             o.restarts);
                ok = false;
            }
        }
    }
    return ok;
}

int
run()
{
    benchutil::printHeader(
        "cluster-resilience",
        "fault rate x placement x migration: checkpoint-requeue "
        "recovery");

    BenchEnv env;
    const long target_jobs = envLong("FLEP_CLUSTER_JOBS", 24, 4, 4000);
    const Mix mix = buildMix(env);

    const std::vector<double> fault_rates = {0.0, 60.0, 180.0};
    std::vector<Cell> cells;
    for (double rate : fault_rates) {
        for (PlacementKind placement : allPlacementKinds()) {
            for (bool migration : {false, true})
                cells.push_back({rate, placement, migration});
        }
    }

    std::vector<ClusterConfig> runs;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        for (int r = 0; r < env.reps(); ++r) {
            // The seed ignores the cell's policy axes: every
            // (rate, rep) pair replays the identical arrival trace
            // and fault plan, isolating placement and migration.
            const std::uint64_t seed =
                1009 +
                static_cast<std::uint64_t>(
                    c / (cells.size() / fault_rates.size())) *
                    101 +
                static_cast<std::uint64_t>(r) * 7919;
            runs.push_back(
                cellConfig(env, mix, cells[c], target_jobs, seed));
        }
    }
    const std::vector<ClusterResult> results =
        env.runClusterBatch(runs);
    if (!checkAccounting(results))
        return 1;

    std::vector<CellStats> stats;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        std::vector<ClusterResult> cell(
            results.begin() +
                static_cast<long>(c * static_cast<std::size_t>(
                                          env.reps())),
            results.begin() +
                static_cast<long>((c + 1) * static_cast<std::size_t>(
                                                env.reps())));
        stats.push_back(aggregate(cell));
    }

    Table table("cluster resilience sweep");
    table.setHeader({"faults/s", "policy", "migrate", "slo-high",
                     "goodput", "faults", "restarts", "migr",
                     "failed"});
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const CellStats &s = stats[c];
        table.addRow({format("%.0f", cell.faultRatePerSec),
                      placementKindName(cell.placement),
                      cell.migration ? "on" : "off",
                      format("%.3f", s.sloHigh),
                      format("%.3f", s.goodput),
                      std::to_string(s.faultsInjected),
                      std::to_string(s.restarts),
                      std::to_string(s.migrations),
                      std::to_string(s.permanentFailures)});
    }
    table.print();
    benchutil::printPaperNote(
        "no paper counterpart: FLEP (ASPLOS'17) is single-GPU; this "
        "sweep shows its drain-boundary preemption doubling as free "
        "checkpointing — fault recovery is a requeue of a few "
        "integers, not a cold restart");

    const char *out = std::getenv("FLEP_RESILIENCE_OUT");
    const char *path = out != nullptr ? out : "BENCH_resilience.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write ", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 1,\n"
                 "  \"reps\": %d,\n"
                 "  \"target_jobs\": %ld,\n"
                 "  \"devices\": %d,\n"
                 "  \"load\": %.2f,\n"
                 "  \"cells\": [\n",
                 env.reps(), target_jobs, kDevices, kLoad);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const CellStats &s = stats[c];
        std::fprintf(
            f,
            "    {\"fault_rate_per_sec\": %.1f, \"policy\": \"%s\", "
            "\"migration\": %s, \"jobs\": %zu, \"completed\": %zu, "
            "\"slo_attainment_high\": %.6f, "
            "\"slo_attainment\": %.6f, "
            "\"mean_turnaround_us\": %.3f, "
            "\"goodput_fraction\": %.6f, "
            "\"faults_injected\": %ld, \"restarts\": %ld, "
            "\"migrations\": %ld, \"permanent_failures\": %ld, "
            "\"lost_work_ns\": %llu}%s\n",
            cell.faultRatePerSec, placementKindName(cell.placement),
            cell.migration ? "true" : "false", s.jobs, s.completed,
            s.sloHigh, s.sloAll, s.meanTurnUs, s.goodput,
            s.faultsInjected, s.restarts, s.migrations,
            s.permanentFailures,
            static_cast<unsigned long long>(s.lostWorkNs),
            c + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    inform("wrote ", path);
    return 0;
}

} // namespace
} // namespace flep

int
main()
{
    return flep::run();
}
