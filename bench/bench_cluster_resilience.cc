/**
 * @file
 * Cluster resilience sweep: fault rate x placement x migration.
 *
 * Two sweeps over an open-loop two-class mix (batch + interactive
 * with turnaround SLOs) under seed-deterministic fault injection
 * (generateFaultPlan: Poisson device crashes and transient stalls):
 *
 *  - the homogeneous sweep: fault rate x placement x migration;
 *  - the heterogeneous sweep (`hetero_cells`): a mixed-width fleet
 *    (15/5/15-SM devices, trained per-device demand pricing) under a
 *    crash-heavy plan, with and without one warm K40 spare. Both
 *    variants replay the identical arrival trace and fault plan, so
 *    the spare's goodput benefit is isolated; the bench asserts
 *    goodput(spare) >= goodput(no spare) at every fault rate before
 *    writing output.
 *
 * Per cell: SLO attainment, completion accounting, faults injected,
 * checkpoint-requeues, migrations, permanent failures, lost work,
 * goodput fraction, and (hetero cells) spare activations and the jobs
 * they absorbed. Results go to stdout and BENCH_resilience.json
 * (override the path with FLEP_RESILIENCE_OUT).
 *
 * Two contracts this bench exists to exercise end to end:
 *
 *  1. No job is silently lost: every submitted job either completes
 *     (possibly after checkpoint-requeue onto a surviving device) or
 *     is accounted a permanent failure. Asserted internally before
 *     any output is written.
 *  2. Determinism: fault plans are data fixed before the run and all
 *     randomness derives from per-run seeds, so the JSON is
 *     bit-identical at any FLEP_THREADS setting (CI cmp's a
 *     1-thread run against a 4-thread run).
 *
 * The experiment extends the paper's premise: FLEP's drain-boundary
 * preemption leaves a job's state as a handful of integers, which is
 * what makes checkpoints free and fault recovery a requeue instead of
 * a cold restart from zero.
 *
 * Environment knobs (see bench/common/bench_util.hh for the shared
 * ones): FLEP_REPS, FLEP_THREADS, plus
 *   FLEP_CLUSTER_JOBS    target jobs per cell (default 24),
 *   FLEP_RESILIENCE_OUT  output path (default BENCH_resilience.json).
 */

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/arrival_gen.hh"
#include "cluster/cluster.hh"
#include "cluster/cluster_metrics.hh"
#include "common/bench_util.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "resilience/fault_plan.hh"

namespace flep
{
namespace
{

using benchutil::BenchEnv;
using benchutil::envLong;

constexpr Priority kBatchPrio = 0;
constexpr Priority kInteractivePrio = 5;
constexpr int kDevices = 3;
constexpr double kLoad = 0.9;

struct Cell
{
    double faultRatePerSec;
    PlacementKind placement;
    bool migration;
};

/** One heterogeneous-fleet cell: crash-heavy faults, +- one spare. */
struct HeteroCell
{
    double faultRatePerSec;
    bool spare;
};

/** Per-cell aggregates: rates averaged, event counts summed. */
struct CellStats
{
    double sloHigh = 0.0;
    double sloAll = 0.0;
    double meanTurnUs = 0.0;
    double goodput = 0.0;
    std::size_t jobs = 0;
    std::size_t completed = 0;
    long faultsInjected = 0;
    long restarts = 0;
    long migrations = 0;
    long permanentFailures = 0;
    Tick lostWorkNs = 0;
    long sparesActivated = 0;
    long jobsAbsorbedBySpares = 0;
    double meanSpareLatencyUs = 0.0;
};

struct Mix
{
    std::vector<ArrivalClassSpec> classes;
    std::vector<double> weights;
    double meanServiceNs = 0.0;
};

double
predictJobNs(const BenchEnv &env, const ArrivalClassSpec &cls)
{
    const InputSpec in =
        env.suite().byName(cls.workload).input(cls.input);
    return env.artifacts().models.at(cls.workload).predictNs(in) *
           cls.repeats;
}

/**
 * Batch jobs run two invocations so a mid-job drain boundary exists:
 * a fault striking between them recovers the first invocation from
 * the checkpoint instead of re-running it.
 */
Mix
buildMix(const BenchEnv &env)
{
    Mix mix;
    mix.classes.resize(2);
    ArrivalClassSpec &batch = mix.classes[0];
    batch.workload = "VA";
    batch.input = InputClass::Large;
    batch.priority = kBatchPrio;
    batch.sloNs = 0;
    batch.repeats = 2;

    ArrivalClassSpec &interactive = mix.classes[1];
    interactive.workload = "NN";
    interactive.input = InputClass::Small;
    interactive.priority = kInteractivePrio;
    interactive.sloNs =
        static_cast<Tick>(6.0 * predictJobNs(env, interactive));

    mix.weights = {0.5, 0.5};
    mix.meanServiceNs = 0.0;
    for (std::size_t i = 0; i < mix.classes.size(); ++i)
        mix.meanServiceNs +=
            mix.weights[i] * predictJobNs(env, mix.classes[i]);
    return mix;
}

/**
 * Guarantee a surviving primary: if the drawn plan crashes every
 * device the cluster dies and queued jobs are stranded by design,
 * which would void the no-lost-job contract this bench asserts. Drop
 * the latest crash (a pure function of the plan, so determinism
 * holds; generateFaultPlan keeps at most one crash per device).
 */
void
ensureSurvivor(std::vector<FaultEvent> &plan, int devices)
{
    std::vector<bool> crashed(static_cast<std::size_t>(devices),
                              false);
    for (const FaultEvent &ev : plan) {
        if (ev.kind == FaultKind::DeviceCrash)
            crashed[static_cast<std::size_t>(ev.device)] = true;
    }
    bool all = true;
    for (bool c : crashed)
        all = all && c;
    if (!all)
        return;
    for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
        if (it->kind == FaultKind::DeviceCrash) {
            plan.erase(std::next(it).base());
            break;
        }
    }
}

ClusterConfig
cellConfig(const BenchEnv &env, const Mix &mix, const Cell &cell,
           long target_jobs, std::uint64_t seed)
{
    const double svc_ms = mix.meanServiceNs / 1e6;
    const double rate_per_ms =
        kLoad * static_cast<double>(kDevices) / svc_ms;

    ClusterArrivalConfig acfg;
    acfg.pattern = ArrivalPattern::Poisson;
    acfg.horizonNs = static_cast<Tick>(
        static_cast<double>(target_jobs) / rate_per_ms * 1e6);
    acfg.seed = seed;
    acfg.classes = mix.classes;
    for (std::size_t i = 0; i < acfg.classes.size(); ++i)
        acfg.classes[i].ratePerMs = mix.weights[i] * rate_per_ms;

    ClusterConfig cfg;
    cfg.gpu = env.gpu();
    cfg.devices = kDevices;
    cfg.placement = cell.placement;
    cfg.deviceScheduler = SchedulerKind::FlepHpf;
    cfg.deviceCapacity = 2;
    cfg.jobs = generateClusterJobs(acfg);
    cfg.horizonNs = 0;
    cfg.seed = seed;

    cfg.resilience.checkpoints = true;
    cfg.resilience.migration.enabled = cell.migration;
    if (cell.faultRatePerSec > 0.0) {
        // Stall-heavy split: crashes are permanent, so an all-crash
        // plan at these rates could kill every device and strand the
        // queue. Faults may fire well past the arrival window while
        // requeued work drains, hence the widened horizon.
        FaultPlanConfig fcfg;
        fcfg.devices = kDevices;
        fcfg.horizonNs = acfg.horizonNs * 3;
        fcfg.seed = seed ^ 0x9e3779b97f4a7c15ull;
        fcfg.crashRatePerSec = 0.2 * cell.faultRatePerSec;
        fcfg.stallRatePerSec = 0.8 * cell.faultRatePerSec;
        cfg.resilience.faults = generateFaultPlan(fcfg);
        ensureSurvivor(cfg.resilience.faults, kDevices);
    }
    return cfg;
}

/**
 * The heterogeneous sweep's config: a 15/5/15-SM fleet with trained
 * per-device demand pricing under a crash-heavy plan, optionally
 * backed by one warm K40 spare. The arrival trace and the fault plan
 * depend only on (seed, rate) — never on `cell.spare` — so the spare
 * and no-spare cells replay identical scenarios.
 */
ClusterConfig
heteroCellConfig(const BenchEnv &env, const Mix &mix,
                 const HeteroCell &cell, long target_jobs,
                 std::uint64_t seed)
{
    const double svc_ms = mix.meanServiceNs / 1e6;
    const double rate_per_ms =
        kLoad * static_cast<double>(kDevices) / svc_ms;

    ClusterArrivalConfig acfg;
    acfg.pattern = ArrivalPattern::Poisson;
    acfg.horizonNs = static_cast<Tick>(
        static_cast<double>(target_jobs) / rate_per_ms * 1e6);
    acfg.seed = seed;
    acfg.classes = mix.classes;
    for (std::size_t i = 0; i < acfg.classes.size(); ++i)
        acfg.classes[i].ratePerMs = mix.weights[i] * rate_per_ms;

    ClusterConfig cfg;
    cfg.gpu = env.gpu();
    cfg.devices = kDevices;
    GpuConfig narrow = env.gpu();
    narrow.numSms = 5;
    cfg.deviceGpus = {env.gpu(), narrow, env.gpu()};
    if (cell.spare) {
        cfg.spareDevices = 1;
        cfg.deviceGpus.push_back(env.gpu());
    }
    cfg.placement = PlacementKind::LeastLoaded;
    cfg.prediction = PredictionSource::Trained;
    cfg.deviceScheduler = SchedulerKind::FlepHpf;
    cfg.deviceCapacity = 2;
    cfg.jobs = generateClusterJobs(acfg);
    cfg.horizonNs = 0;
    cfg.seed = seed;

    cfg.resilience.checkpoints = true;
    if (cell.faultRatePerSec > 0.0) {
        // Crash-heavy split — the regime warm spares exist for. The
        // survivor guarantee keeps at least one primary alive so the
        // no-spare variant can still drain its queue.
        FaultPlanConfig fcfg;
        fcfg.devices = kDevices;
        fcfg.horizonNs = acfg.horizonNs * 3;
        fcfg.seed = seed ^ 0x5bd1e995c0ffee00ull;
        fcfg.crashRatePerSec = 0.6 * cell.faultRatePerSec;
        fcfg.stallRatePerSec = 0.4 * cell.faultRatePerSec;
        cfg.resilience.faults = generateFaultPlan(fcfg);
        ensureSurvivor(cfg.resilience.faults, kDevices);
    }
    return cfg;
}

CellStats
aggregate(const std::vector<ClusterResult> &reps)
{
    CellStats s;
    for (const auto &res : reps) {
        const ClusterMetrics m = computeClusterMetrics(res);
        auto high = m.sloAttainmentByPriority.find(kInteractivePrio);
        s.sloHigh += high == m.sloAttainmentByPriority.end()
            ? 1.0
            : high->second;
        s.sloAll += m.sloAttainment;
        s.meanTurnUs += m.meanTurnaroundUs;
        s.goodput += m.goodputFraction;
        s.jobs += m.jobs;
        s.completed += m.completed;
        s.faultsInjected += m.faultsInjected;
        s.restarts += m.restarts;
        s.migrations += m.migrations;
        s.permanentFailures += m.permanentFailures;
        s.lostWorkNs += m.lostWorkNs;
        s.sparesActivated += m.sparesActivated;
        s.jobsAbsorbedBySpares += m.jobsAbsorbedBySpares;
        s.meanSpareLatencyUs += m.meanSpareActivationLatencyUs;
    }
    const auto n = static_cast<double>(reps.size());
    s.sloHigh /= n;
    s.sloAll /= n;
    s.meanTurnUs /= n;
    s.goodput /= n;
    s.meanSpareLatencyUs /= n;
    return s;
}

/** Contract 1: no job may end the run unaccounted. */
bool
checkAccounting(const std::vector<ClusterResult> &results)
{
    bool ok = true;
    for (std::size_t r = 0; r < results.size(); ++r) {
        for (const JobOutcome &o : results[r].outcomes) {
            if (!o.completed && !o.failedPermanently) {
                std::fprintf(stderr,
                             "FATAL: run %zu job %d neither completed "
                             "nor failed permanently (placed=%d "
                             "device=%d restarts=%d)\n",
                             r, o.job.id, o.placed ? 1 : 0, o.device,
                             o.restarts);
                ok = false;
            }
        }
    }
    return ok;
}

int
run()
{
    benchutil::printHeader(
        "cluster-resilience",
        "fault rate x placement x migration: checkpoint-requeue "
        "recovery");

    BenchEnv env;
    const long target_jobs = envLong("FLEP_CLUSTER_JOBS", 24, 4, 4000);
    const Mix mix = buildMix(env);

    const std::vector<double> fault_rates = {0.0, 60.0, 180.0};
    std::vector<Cell> cells;
    for (double rate : fault_rates) {
        for (PlacementKind placement : allPlacementKinds()) {
            for (bool migration : {false, true})
                cells.push_back({rate, placement, migration});
        }
    }

    std::vector<ClusterConfig> runs;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        for (int r = 0; r < env.reps(); ++r) {
            // The seed ignores the cell's policy axes: every
            // (rate, rep) pair replays the identical arrival trace
            // and fault plan, isolating placement and migration.
            const std::uint64_t seed =
                1009 +
                static_cast<std::uint64_t>(
                    c / (cells.size() / fault_rates.size())) *
                    101 +
                static_cast<std::uint64_t>(r) * 7919;
            runs.push_back(
                cellConfig(env, mix, cells[c], target_jobs, seed));
        }
    }
    // Heterogeneous fleet cells ride in the same batch: per fault
    // rate, one no-spare and one spare variant of the identical
    // scenario.
    std::vector<HeteroCell> hetero_cells;
    for (double rate : fault_rates) {
        for (bool spare : {false, true})
            hetero_cells.push_back({rate, spare});
    }
    const std::size_t hetero_base = runs.size();
    for (std::size_t c = 0; c < hetero_cells.size(); ++c) {
        for (int r = 0; r < env.reps(); ++r) {
            // Seed ignores the spare axis so both variants replay
            // the same arrivals and faults.
            const std::uint64_t seed =
                2027 + static_cast<std::uint64_t>(c / 2) * 101 +
                static_cast<std::uint64_t>(r) * 7919;
            runs.push_back(heteroCellConfig(env, mix,
                                            hetero_cells[c],
                                            target_jobs, seed));
        }
    }

    const std::vector<ClusterResult> results =
        env.runClusterBatch(runs);
    if (!checkAccounting(results))
        return 1;

    const auto cellSlice = [&](std::size_t base, std::size_t c) {
        const auto reps = static_cast<std::size_t>(env.reps());
        return std::vector<ClusterResult>(
            results.begin() + static_cast<long>(base + c * reps),
            results.begin() +
                static_cast<long>(base + (c + 1) * reps));
    };

    std::vector<CellStats> stats;
    for (std::size_t c = 0; c < cells.size(); ++c)
        stats.push_back(aggregate(cellSlice(0, c)));
    std::vector<CellStats> hetero_stats;
    for (std::size_t c = 0; c < hetero_cells.size(); ++c)
        hetero_stats.push_back(aggregate(cellSlice(hetero_base, c)));

    // Contract 3: at every fault rate the warm spare must not cost
    // goodput — it replays the identical scenario with strictly more
    // recovery capacity. Asserted before any output is written.
    for (std::size_t c = 0; c + 1 < hetero_cells.size(); c += 2) {
        const double without = hetero_stats[c].goodput;
        const double with_spare = hetero_stats[c + 1].goodput;
        if (with_spare + 1e-9 < without) {
            std::fprintf(stderr,
                         "FATAL: spare goodput %.6f < no-spare %.6f "
                         "at fault rate %.0f/s\n",
                         with_spare, without,
                         hetero_cells[c].faultRatePerSec);
            return 1;
        }
    }

    Table table("cluster resilience sweep");
    table.setHeader({"faults/s", "policy", "migrate", "slo-high",
                     "goodput", "faults", "restarts", "migr",
                     "failed"});
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const CellStats &s = stats[c];
        table.addRow({format("%.0f", cell.faultRatePerSec),
                      placementKindName(cell.placement),
                      cell.migration ? "on" : "off",
                      format("%.3f", s.sloHigh),
                      format("%.3f", s.goodput),
                      std::to_string(s.faultsInjected),
                      std::to_string(s.restarts),
                      std::to_string(s.migrations),
                      std::to_string(s.permanentFailures)});
    }
    table.print();

    Table htable("heterogeneous fleet (15/5/15 SMs) + warm spare");
    htable.setHeader({"faults/s", "spare", "slo-high", "goodput",
                      "faults", "restarts", "absorbed", "failed"});
    for (std::size_t c = 0; c < hetero_cells.size(); ++c) {
        const HeteroCell &cell = hetero_cells[c];
        const CellStats &s = hetero_stats[c];
        htable.addRow({format("%.0f", cell.faultRatePerSec),
                       cell.spare ? "on" : "off",
                       format("%.3f", s.sloHigh),
                       format("%.3f", s.goodput),
                       std::to_string(s.faultsInjected),
                       std::to_string(s.restarts),
                       std::to_string(s.jobsAbsorbedBySpares),
                       std::to_string(s.permanentFailures)});
    }
    htable.print();
    benchutil::printPaperNote(
        "no paper counterpart: FLEP (ASPLOS'17) is single-GPU; this "
        "sweep shows its drain-boundary preemption doubling as free "
        "checkpointing — fault recovery is a requeue of a few "
        "integers, not a cold restart");

    const char *out = std::getenv("FLEP_RESILIENCE_OUT");
    const char *path = out != nullptr ? out : "BENCH_resilience.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write ", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 2,\n"
                 "  \"reps\": %d,\n"
                 "  \"target_jobs\": %ld,\n"
                 "  \"devices\": %d,\n"
                 "  \"load\": %.2f,\n"
                 "  \"cells\": [\n",
                 env.reps(), target_jobs, kDevices, kLoad);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const CellStats &s = stats[c];
        std::fprintf(
            f,
            "    {\"fault_rate_per_sec\": %.1f, \"policy\": \"%s\", "
            "\"migration\": %s, \"jobs\": %zu, \"completed\": %zu, "
            "\"slo_attainment_high\": %.6f, "
            "\"slo_attainment\": %.6f, "
            "\"mean_turnaround_us\": %.3f, "
            "\"goodput_fraction\": %.6f, "
            "\"faults_injected\": %ld, \"restarts\": %ld, "
            "\"migrations\": %ld, \"permanent_failures\": %ld, "
            "\"lost_work_ns\": %llu}%s\n",
            cell.faultRatePerSec, placementKindName(cell.placement),
            cell.migration ? "true" : "false", s.jobs, s.completed,
            s.sloHigh, s.sloAll, s.meanTurnUs, s.goodput,
            s.faultsInjected, s.restarts, s.migrations,
            s.permanentFailures,
            static_cast<unsigned long long>(s.lostWorkNs),
            c + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"hetero_cells\": [\n");
    for (std::size_t c = 0; c < hetero_cells.size(); ++c) {
        const HeteroCell &cell = hetero_cells[c];
        const CellStats &s = hetero_stats[c];
        std::fprintf(
            f,
            "    {\"fault_rate_per_sec\": %.1f, \"spare\": %s, "
            "\"jobs\": %zu, \"completed\": %zu, "
            "\"slo_attainment_high\": %.6f, "
            "\"slo_attainment\": %.6f, "
            "\"mean_turnaround_us\": %.3f, "
            "\"goodput_fraction\": %.6f, "
            "\"faults_injected\": %ld, \"restarts\": %ld, "
            "\"permanent_failures\": %ld, \"lost_work_ns\": %llu, "
            "\"spares_activated\": %ld, "
            "\"jobs_absorbed_by_spares\": %ld, "
            "\"mean_spare_activation_latency_us\": %.3f}%s\n",
            cell.faultRatePerSec, cell.spare ? "true" : "false",
            s.jobs, s.completed, s.sloHigh, s.sloAll, s.meanTurnUs,
            s.goodput, s.faultsInjected, s.restarts,
            s.permanentFailures,
            static_cast<unsigned long long>(s.lostWorkNs),
            s.sparesActivated, s.jobsAbsorbedBySpares,
            s.meanSpareLatencyUs,
            c + 1 < hetero_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    inform("wrote ", path);
    return 0;
}

} // namespace
} // namespace flep

int
main()
{
    return flep::run();
}
