#include "runtime/preemption.hh"

#include <algorithm>

#include "gpu/occupancy.hh"

namespace flep
{

int
smsNeededForInput(const GpuConfig &cfg, const InputSpec &in)
{
    const long capacity = deviceCtaCapacity(cfg, in.footprint);
    const long wave = std::min<long>(capacity, in.totalTasks);
    return smsNeededFor(cfg, in.footprint, wave);
}

PreemptionPlan
planPreemption(const GpuConfig &cfg, const InputSpec &incoming,
               bool spatial_enabled, int forced_sms)
{
    PreemptionPlan plan;
    if (!spatial_enabled) {
        plan.smCount = cfg.numSms;
        plan.spatial = false;
        return plan;
    }
    int sms = forced_sms > 0 ? forced_sms
                             : smsNeededForInput(cfg, incoming);
    sms = std::min(sms, cfg.numSms);
    plan.smCount = sms;
    plan.spatial = sms < cfg.numSms;
    return plan;
}

const char *
preemptionKindName(const PreemptionPlan &plan)
{
    return plan.spatial ? "spatial" : "temporal";
}

} // namespace flep
