/** @file End-to-end runtime scenarios through real hosts + device. */

#include <gtest/gtest.h>

#include "flep/experiment.hh"
#include "gpu/gpu_device.hh"
#include "runtime/host_process.hh"
#include "runtime/hpf.hh"
#include "runtime/runtime.hh"
#include "workload/suite.hh"

namespace flep
{
namespace
{

struct Rig
{
    Simulation sim{11};
    GpuConfig cfg = GpuConfig::keplerK40();
    GpuDevice gpu{sim, cfg};
    BenchmarkSuite suite;
    std::unique_ptr<FlepRuntime> runtime;
    std::vector<std::unique_ptr<HostProcess>> hosts;

    explicit Rig(HpfPolicy::Config hpf = {})
    {
        FlepRuntimeConfig rcfg; // fallback predictions suffice
        runtime = std::make_unique<FlepRuntime>(
            sim, gpu, std::make_unique<HpfPolicy>(hpf),
            std::move(rcfg));
    }

    HostProcess &
    add(const std::string &name, InputClass input, Priority prio,
        Tick delay, int repeats = 1)
    {
        const Workload &w = suite.byName(name);
        HostProcess::ScriptEntry e;
        e.workload = &w;
        e.input = w.input(input);
        e.priority = prio;
        e.delayBefore = delay;
        e.repeats = repeats;
        e.amortizeL = w.paperAmortizeL();
        hosts.push_back(std::make_unique<HostProcess>(
            sim, gpu, *runtime, static_cast<ProcessId>(hosts.size()),
            std::vector<HostProcess::ScriptEntry>{e}));
        return *hosts.back();
    }

    void
    runAll()
    {
        for (auto &h : hosts)
            h->start();
        sim.run();
    }
};

TEST(RuntimeIntegration, SpatialVictimCompletesAllWork)
{
    // Spatial preemption + refill must not lose victim tasks.
    HpfPolicy::Config hpf;
    hpf.enableSpatial = true;
    Rig rig(hpf);
    auto &victim = rig.add("NN", InputClass::Large, 0, 0);
    auto &guest = rig.add("MD", InputClass::Trivial, 5, 500000);
    rig.runAll();
    ASSERT_EQ(victim.results().size(), 1u);
    ASSERT_EQ(guest.results().size(), 1u);
    EXPECT_EQ(victim.results()[0].totalTasks,
              rig.suite.byName("NN").input(InputClass::Large)
                  .totalTasks);
    // The guest finished while the victim was still running.
    EXPECT_LT(guest.results()[0].finishTick,
              victim.results()[0].finishTick);
    // Spatial: the victim was never fully drained off the GPU.
    EXPECT_EQ(victim.results()[0].preemptions, 0);
    EXPECT_EQ(rig.runtime->preemptionsSignalled(), 1);
}

TEST(RuntimeIntegration, SpatialVictimBarelySlowed)
{
    HpfPolicy::Config spatial_cfg;
    spatial_cfg.enableSpatial = true;

    auto makespan = [&](HpfPolicy::Config hpf) {
        Rig rig(hpf);
        rig.add("NN", InputClass::Large, 0, 0);
        rig.add("MD", InputClass::Trivial, 5, 500000);
        rig.runAll();
        return rig.hosts[0]->results()[0].finishTick;
    };
    const Tick spatial = makespan(spatial_cfg);
    const Tick temporal = makespan(HpfPolicy::Config{});
    EXPECT_LT(spatial, temporal);
}

TEST(RuntimeIntegration, BadPredictionsStillCorrect)
{
    // Garbage duration models can hurt scheduling quality but must
    // never break execution correctness.
    Simulation sim(13);
    GpuDevice gpu(sim, GpuConfig::keplerK40());
    BenchmarkSuite suite;

    FlepRuntimeConfig rcfg;
    rcfg.fallbackPredictNs = 1; // absurdly wrong predictions
    FlepRuntime runtime(sim, gpu, std::make_unique<HpfPolicy>(),
                        std::move(rcfg));

    std::vector<std::unique_ptr<HostProcess>> hosts;
    const char *names[] = {"MM", "SPMV", "VA"};
    for (int i = 0; i < 3; ++i) {
        const Workload &w = suite.byName(names[i]);
        HostProcess::ScriptEntry e;
        e.workload = &w;
        e.input = w.input(InputClass::Small);
        e.priority = 0;
        e.delayBefore = static_cast<Tick>(i) * 20000;
        e.amortizeL = w.paperAmortizeL();
        hosts.push_back(std::make_unique<HostProcess>(
            sim, gpu, runtime, i,
            std::vector<HostProcess::ScriptEntry>{e}));
    }
    for (auto &h : hosts)
        h->start();
    sim.run();
    for (auto &h : hosts) {
        ASSERT_EQ(h->results().size(), 1u);
        EXPECT_GT(h->results()[0].turnaroundNs(), 0u);
    }
    EXPECT_EQ(runtime.trackedCount(), 0u);
}

TEST(RuntimeIntegration, PreemptionLatencyObservedAndBounded)
{
    Rig rig;
    rig.add("NN", InputClass::Large, 0, 0);
    rig.add("SPMV", InputClass::Small, 5, 400000);
    rig.runAll();
    const auto &lat = rig.runtime->preemptionLatency();
    ASSERT_EQ(lat.count(), 1u);
    // Bounded by ~2 chunks of NN work (L=100, ~1.1us tasks at 2.26x
    // contention) plus signalling slack.
    EXPECT_GT(lat.mean(), 10000.0);
    EXPECT_LT(lat.mean(), 800000.0);
}

TEST(RuntimeIntegration, ChainOfPriorities)
{
    // p0 running; p5 preempts it; p9 preempts p5; unwinding resumes
    // in priority order.
    Rig rig;
    auto &low = rig.add("NN", InputClass::Large, 0, 0);
    auto &mid = rig.add("PF", InputClass::Small, 5, 300000);
    auto &high = rig.add("SPMV", InputClass::Small, 9, 600000);
    rig.runAll();
    ASSERT_EQ(low.results().size(), 1u);
    ASSERT_EQ(mid.results().size(), 1u);
    ASSERT_EQ(high.results().size(), 1u);
    EXPECT_LT(high.results()[0].finishTick,
              mid.results()[0].finishTick);
    EXPECT_LT(mid.results()[0].finishTick,
              low.results()[0].finishTick);
    EXPECT_GE(low.results()[0].preemptions, 1);
    EXPECT_GE(mid.results()[0].preemptions, 1);
}

TEST(RuntimeIntegration, ManyProcessesDrainCompletely)
{
    // Eight equal-priority processes, one per benchmark, arriving in
    // a burst: everything must complete exactly once, and the
    // runtime's bookkeeping must end empty.
    Rig rig;
    BenchmarkSuite suite;
    int i = 0;
    for (const auto &name : suite.names())
        rig.add(name, InputClass::Small, 1,
                static_cast<Tick>(i++) * 10000);
    rig.runAll();
    for (auto &h : rig.hosts)
        EXPECT_EQ(h->results().size(), 1u);
    EXPECT_EQ(rig.runtime->trackedCount(), 0u);
    EXPECT_EQ(rig.gpu.residentCtas(), 0);
    EXPECT_EQ(rig.gpu.scheduler().totalUndispatched(), 0);
}

TEST(RuntimeIntegration, RepeatedInvocationsFromOneProcess)
{
    Rig rig;
    const Workload &w = rig.suite.byName("MM");
    HostProcess::ScriptEntry e;
    e.workload = &w;
    e.input = w.input(InputClass::Trivial);
    e.priority = 0;
    e.delayBefore = 5000;
    e.repeats = 10;
    e.amortizeL = w.paperAmortizeL();
    rig.hosts.push_back(std::make_unique<HostProcess>(
        rig.sim, rig.gpu, *rig.runtime, 0,
        std::vector<HostProcess::ScriptEntry>{e}));
    rig.runAll();
    EXPECT_EQ(rig.hosts[0]->results().size(), 10u);
    EXPECT_EQ(rig.runtime->trackedCount(), 0u);
}

TEST(RuntimeIntegration, EqualArrivalsServedShortestFirst)
{
    // Three equal-priority kernels arrive while a long one runs; at
    // its completion the shortest-predicted goes first. Uses real
    // trained models for the predictions.
    BenchmarkSuite suite;
    const GpuConfig cfg = GpuConfig::keplerK40();
    const auto art = runOfflinePhase(suite, cfg, 25, 5);

    CoRunConfig cc;
    cc.scheduler = SchedulerKind::FlepHpf;
    cc.kernels = {{"NN", InputClass::Large, 0, 0, 1},
                  {"MM", InputClass::Small, 0, 100000, 1},
                  {"SPMV", InputClass::Small, 0, 150000, 1},
                  {"CFD", InputClass::Small, 0, 200000, 1}};
    const auto res = runCoRun(suite, art, cc);
    // SPMV (~480us) < CFD (~520us) < MM (~1500us).
    Tick spmv = 0;
    Tick cfd = 0;
    Tick mm = 0;
    for (const auto &inv : res.invocations) {
        if (inv.kernel == "SPMV")
            spmv = inv.finishTick;
        if (inv.kernel == "CFD")
            cfd = inv.finishTick;
        if (inv.kernel == "MM")
            mm = inv.finishTick;
    }
    EXPECT_LT(spmv, mm);
    EXPECT_LT(cfd, mm);
}

} // namespace
} // namespace flep
