/** @file Property tests: preemption never loses or duplicates work.
 *
 * The persistent-thread transformation's core safety property is that
 * the global task counter survives preemption: however often a kernel
 * is preempted and resumed, every task executes exactly once.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_device.hh"
#include "sim/simulation.hh"

namespace flep
{
namespace
{

KernelLaunchDesc
persistentDesc(long tasks, double task_ns, int l)
{
    KernelLaunchDesc d;
    d.name = "victim";
    d.totalTasks = tasks;
    d.footprint = CtaFootprint{256, 32, 0};
    d.cost = TaskCostModel(task_ns, 0.1);
    d.contentionBeta = 0.05;
    d.mode = ExecMode::Persistent;
    d.amortizeL = l;
    return d;
}

/** Preempt/resume `cycles` times, then check completion invariants. */
void
runPreemptResumeCycles(int cycles, long tasks, double task_ns, int l,
                       std::uint64_t seed)
{
    Simulation sim(seed);
    const GpuConfig cfg = GpuConfig::keplerK40();
    GpuDevice gpu(sim, cfg);
    auto exec = gpu.createExec(persistentDesc(tasks, task_ns, l));

    int drains = 0;
    exec->onDrained = [&](KernelExec &e, Tick now) {
        ++drains;
        // Resume 20us later.
        sim.events().scheduleAfter(20000, [&, now]() {
            (void)now;
            e.setFlag(sim.now(), 0);
            gpu.launch(exec, cfg.kernelLaunchNs);
        });
    };
    gpu.launch(exec, cfg.kernelLaunchNs);

    // Fire preemptions periodically until `cycles` achieved.
    std::function<void()> preempter = [&]() {
        if (exec->complete() || drains >= cycles)
            return;
        if (exec->activeCtas() > 0 && exec->flagHostValue() == 0)
            exec->setFlag(sim.now(), cfg.numSms);
        sim.events().scheduleAfter(100000, preempter);
    };
    sim.events().scheduleAfter(20000, preempter);

    sim.run();

    ASSERT_TRUE(exec->complete());
    EXPECT_EQ(exec->tasksCompleted(), tasks);
    EXPECT_EQ(exec->tasksUnclaimed(), 0);
    EXPECT_EQ(exec->activeCtas(), 0);
    EXPECT_GE(drains, 1) << "scenario never actually preempted";
}

TEST(PreemptionSafety, SinglePreemptResume)
{
    runPreemptResumeCycles(1, 20000, 1000.0, 20, 42);
}

TEST(PreemptionSafety, ManyPreemptResumeCycles)
{
    runPreemptResumeCycles(8, 60000, 500.0, 50, 43);
}

TEST(PreemptionSafety, HeavyTasksSmallL)
{
    runPreemptResumeCycles(3, 3000, 50000.0, 1, 44);
}

class PreemptionSweep
    : public ::testing::TestWithParam<std::tuple<long, int>>
{
};

TEST_P(PreemptionSweep, NoTaskLostOrDuplicated)
{
    const auto [tasks, l] = GetParam();
    runPreemptResumeCycles(3, tasks, 800.0, l,
                           static_cast<std::uint64_t>(tasks + l));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PreemptionSweep,
    ::testing::Combine(::testing::Values(30000L, 80000L, 200000L),
                       ::testing::Values(1, 10, 50, 100)));

TEST(PreemptionSafety, SpatialYieldFreesExactlyRequestedSms)
{
    Simulation sim(7);
    const GpuConfig cfg = GpuConfig::keplerK40();
    GpuDevice gpu(sim, cfg);
    auto exec = gpu.createExec(persistentDesc(500000, 1000.0, 20));
    gpu.launch(exec, 0);
    sim.runUntil(200000);
    ASSERT_EQ(gpu.residentCtas(), 120);

    exec->setFlag(sim.now(), 4); // yield SMs 0..3
    // Give the drain plenty of time (one chunk + slack).
    sim.runUntil(sim.now() + 400000);
    for (SmId s = 0; s < 4; ++s)
        EXPECT_EQ(gpu.sm(s).residentCtas(), 0) << "sm " << s;
    for (SmId s = 4; s < cfg.numSms; ++s)
        EXPECT_EQ(gpu.sm(s).residentCtas(), 8) << "sm " << s;

    // The rest of the kernel still completes on the remaining SMs.
    sim.run();
    EXPECT_TRUE(exec->complete());
    EXPECT_EQ(exec->tasksCompleted(), 500000);
}

TEST(PreemptionSafety, TemporalFlagEqualsSpatialWithAllSms)
{
    // Paper: spatial preemption with spa_P >= numSms is temporal.
    Simulation sim(9);
    const GpuConfig cfg = GpuConfig::keplerK40();
    GpuDevice gpu(sim, cfg);
    auto exec = gpu.createExec(persistentDesc(500000, 1000.0, 20));
    bool drained = false;
    exec->onDrained = [&](KernelExec &, Tick) { drained = true; };
    gpu.launch(exec, 0);
    sim.runUntil(200000);
    exec->setFlag(sim.now(), cfg.numSms);
    sim.runUntil(sim.now() + 500000);
    EXPECT_TRUE(drained);
    EXPECT_EQ(gpu.residentCtas(), 0);
    EXPECT_FALSE(exec->complete());
    EXPECT_GT(exec->tasksCompleted(), 0);
    EXPECT_GT(exec->tasksUnclaimed(), 0);
}

TEST(PreemptionSafety, PreemptionLatencyBoundedByChunk)
{
    // After the flag lands, every CTA exits within one chunk plus one
    // poll: latency <= L * (task * maxContention + atomic) + slack.
    Simulation sim(21);
    const GpuConfig cfg = GpuConfig::keplerK40();
    GpuDevice gpu(sim, cfg);
    const int l = 50;
    const double task_ns = 2000.0;
    auto exec = gpu.createExec(persistentDesc(500000, task_ns, l));
    Tick drain_tick = 0;
    exec->onDrained = [&](KernelExec &, Tick now) { drain_tick = now; };
    gpu.launch(exec, 0);
    sim.runUntil(300000);
    const Tick flag_at = sim.now();
    exec->setFlag(flag_at, cfg.numSms);
    sim.run();
    ASSERT_GT(drain_tick, flag_at);
    const double contention = 1.0 + 0.05 * 7;
    const Tick bound = static_cast<Tick>(
        2.0 * l * (task_ns * contention + cfg.atomicNs) +
        10 * cfg.pinnedReadNs + cfg.pinnedWriteVisibleNs);
    EXPECT_LE(drain_tick - flag_at, bound);
}

} // namespace
} // namespace flep
