/**
 * @file
 * Offline tuning of the amortizing factor L (paper §4.1).
 *
 * FLEP finds the smallest L such that the runtime overhead introduced
 * by the persistent-thread transformation (flag polling + task
 * pulling) stays below a threshold — 4% in the paper — by trying
 * candidate values from small to large against untransformed runs.
 */

#ifndef FLEP_RUNTIME_AMORTIZING_TUNER_HH
#define FLEP_RUNTIME_AMORTIZING_TUNER_HH

#include <vector>

#include "gpu/gpu_config.hh"
#include "workload/workload.hh"

namespace flep
{

/** Tuner settings. */
struct TunerConfig
{
    /** Overhead threshold the tuned L must satisfy. */
    double threshold = 0.04;

    /** Candidate amortizing factors, tried small to large. */
    std::vector<int> candidates{1, 2, 5, 10, 20, 50, 100, 150, 200,
                                300, 500};

    /** Measurement repetitions per candidate. */
    int reps = 3;

    std::uint64_t seed = 4242;
};

/** Result for one workload. */
struct TunedAmortizing
{
    int amortizeL = 1;      //!< the chosen factor
    double overhead = 0.0;  //!< measured overhead at that factor
    bool satisfied = false; //!< threshold met (false = best effort)
};

/**
 * Measure the transformation overhead of workload `w` at factor `l`:
 * (persistent duration - original duration) / original duration on
 * the large input.
 */
double transformationOverhead(const GpuConfig &cfg, const Workload &w,
                              int l, int reps, std::uint64_t seed);

/** Tune L for one workload. */
TunedAmortizing tuneAmortizingFactor(const GpuConfig &cfg,
                                     const Workload &w,
                                     const TunerConfig &tcfg);

} // namespace flep

#endif // FLEP_RUNTIME_AMORTIZING_TUNER_HH
