/**
 * @file
 * ASCII table printer used by the bench harnesses to emit the rows and
 * series the paper's tables/figures report.
 */

#ifndef FLEP_COMMON_TABLE_HH
#define FLEP_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace flep
{

/**
 * A simple column-aligned ASCII table. Columns are sized to their
 * widest cell; numeric cells are right-aligned, text left-aligned.
 */
class Table
{
  public:
    /** Create a table with a title (printed above the header). */
    explicit Table(std::string title);

    /** Set the header row. Must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: begin a row builder. */
    class RowBuilder
    {
      public:
        explicit RowBuilder(Table &table) : table_(table) {}
        ~RowBuilder();
        RowBuilder(const RowBuilder &) = delete;
        RowBuilder &operator=(const RowBuilder &) = delete;

        RowBuilder &cell(const std::string &text);
        RowBuilder &cell(double value, int decimals = 2);
        RowBuilder &cell(long long value);

      private:
        Table &table_;
        std::vector<std::string> cells_;
    };

    /** Start building a row cell by cell. */
    RowBuilder row() { return RowBuilder(*this); }

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace flep

#endif // FLEP_COMMON_TABLE_HH
