#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace flep
{

namespace
{

// Atomic so worker threads of a parallel batch can consult the level
// while the main thread (re)configures it.
std::atomic<LogLevel> globalLevel{LogLevel::Normal};

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

namespace detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[flep:%s] %s\n", tag, msg.c_str());
}

} // namespace detail

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[flep:panic] %s:%d: %s\n", file, line,
                 msg.c_str());
    std::abort();
}

} // namespace flep
