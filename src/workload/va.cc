#include "workload/benchmarks.hh"

namespace flep
{

/**
 * VA (CUDA SDK): vector addition. The 6-line kernel with no loop
 * structure — each task is a few hundred element additions with
 * perfect spatial locality and coalescing, so duration is almost
 * perfectly predictable. Tasks are so cheap that FLEP needs its
 * largest amortizing factor (200) to keep the pinned-memory poll
 * amortized below the 4 % tuning threshold; it is also the benchmark
 * where kernel slicing beats FLEP in Figure 17. Streams nothing but
 * bandwidth, hence the highest contention beta of the suite.
 */
WorkloadPtr
makeVa()
{
    Workload::Params p;
    p.name = "VA";
    p.source = "CUDA SDK";
    p.description = "vector addition";
    p.kernelLoc = 6;
    p.paperAmortizeL = 200;
    p.contentionBeta = 0.15;
    p.footprint = CtaFootprint{256, 32, 0};

    p.largeTasks = 1900000;
    p.largeTaskNs = 936.0;
    p.smallTasks = 44650;
    p.smallTaskNs = 917.0;
    p.trivialCtas = 40;
    p.trivialTaskNs = 32967.3;

    p.taskCv = 0.015;
    p.hiddenCv = 0.03;
    p.sizeExponent = 0.0;
    return std::make_unique<Workload>(p);
}

} // namespace flep
