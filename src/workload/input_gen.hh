/**
 * @file
 * Training/test input generation for the performance models.
 *
 * The paper trains each kernel's regression model on 100 randomly
 * generated data inputs (§4.2). This module produces those inputs and
 * matching held-out test sets.
 */

#ifndef FLEP_WORKLOAD_INPUT_GEN_HH
#define FLEP_WORKLOAD_INPUT_GEN_HH

#include <vector>

#include "common/random.hh"
#include "workload/workload.hh"

namespace flep
{

/** A batch of random inputs for one workload. */
std::vector<InputSpec> generateInputs(const Workload &w, int count,
                                      Rng &rng);

/**
 * Train/test split: `train_count` inputs for fitting and
 * `test_count` independent inputs for error evaluation.
 */
struct InputSplit
{
    std::vector<InputSpec> train;
    std::vector<InputSpec> test;
};

/** Generate a train/test split for one workload. */
InputSplit generateSplit(const Workload &w, int train_count,
                         int test_count, Rng &rng);

} // namespace flep

#endif // FLEP_WORKLOAD_INPUT_GEN_HH
