#include "flep/flep.hh"

#include "common/logging.hh"

namespace flep
{

FlepSystem::FlepSystem(Options opts)
    : opts_(opts)
{
    artifacts_ = runOfflinePhase(suite_, opts_.gpu, opts_.trainInputs,
                                 opts_.profileRuns, opts_.seed * 17 + 3);

    sim_ = std::make_unique<Simulation>(opts_.seed);
    gpu_ = std::make_unique<GpuDevice>(*sim_, opts_.gpu);

    FlepRuntimeConfig rcfg;
    rcfg.models = artifacts_.models;
    rcfg.overheads = artifacts_.overheads;
    std::unique_ptr<SchedulingPolicy> policy;
    if (opts_.policy == Policy::Hpf)
        policy = std::make_unique<HpfPolicy>(opts_.hpf);
    else
        policy = std::make_unique<FfsPolicy>(opts_.ffs);
    runtime_ = std::make_unique<FlepRuntime>(*sim_, *gpu_,
                                             std::move(policy),
                                             std::move(rcfg));
}

FlepSystem::~FlepSystem() = default;

HostProcess::ScriptEntry
FlepSystem::kernel(const std::string &workload, InputClass input,
                   Priority priority, Tick delay_ns, int repeats) const
{
    const Workload &w = suite_.byName(workload);
    HostProcess::ScriptEntry entry;
    entry.workload = &w;
    entry.input = w.input(input);
    entry.priority = priority;
    entry.delayBefore = delay_ns;
    entry.repeats = repeats;
    auto it = artifacts_.amortizeL.find(workload);
    entry.amortizeL =
        it == artifacts_.amortizeL.end() ? w.paperAmortizeL()
                                         : it->second;
    return entry;
}

HostProcess &
FlepSystem::addProcess(std::vector<HostProcess::ScriptEntry> script)
{
    hosts_.push_back(std::make_unique<HostProcess>(
        *sim_, *gpu_, *runtime_,
        static_cast<ProcessId>(hosts_.size()), std::move(script)));
    return *hosts_.back();
}

void
FlepSystem::startPending()
{
    for (; started_ < hosts_.size(); ++started_)
        hosts_[started_]->start();
}

Tick
FlepSystem::run()
{
    startPending();
    return sim_->run();
}

Tick
FlepSystem::runFor(Tick ns)
{
    startPending();
    return sim_->runUntil(sim_->now() + ns);
}

} // namespace flep
