/** @file Tests for the FlepSystem facade (public API). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "flep/flep.hh"

namespace flep
{
namespace
{

FlepSystem::Options
fastOptions()
{
    FlepSystem::Options opts;
    opts.trainInputs = 15;
    opts.profileRuns = 3;
    return opts;
}

TEST(FlepSystem, OfflinePhaseProducesArtifacts)
{
    FlepSystem sys(fastOptions());
    EXPECT_EQ(sys.artifacts().models.size(), 8u);
    EXPECT_EQ(sys.artifacts().overheads.size(), 8u);
    EXPECT_EQ(sys.artifacts().amortizeL.at("VA"), 200);
    EXPECT_EQ(sys.suite().size(), 8u);
}

TEST(FlepSystem, TwoProcessPriorityScenario)
{
    FlepSystem sys(fastOptions());
    auto &batch = sys.addProcess(
        {sys.kernel("NN", InputClass::Large, 0)});
    auto &query = sys.addProcess(
        {sys.kernel("SPMV", InputClass::Small, 5, 50000)});
    sys.run();
    ASSERT_EQ(batch.results().size(), 1u);
    ASSERT_EQ(query.results().size(), 1u);
    EXPECT_LT(ticksToUs(query.results()[0].turnaroundNs()), 1500.0);
    EXPECT_GE(batch.results()[0].preemptions, 1);
}

TEST(FlepSystem, KernelBuilderFillsEntry)
{
    FlepSystem sys(fastOptions());
    const auto e = sys.kernel("MM", InputClass::Small, 3, 42, 7);
    EXPECT_EQ(e.workload->name(), "MM");
    EXPECT_EQ(e.priority, 3);
    EXPECT_EQ(e.delayBefore, 42u);
    EXPECT_EQ(e.repeats, 7);
    EXPECT_EQ(e.amortizeL, 2);
    EXPECT_THROW(sys.kernel("NOPE", InputClass::Small, 0),
                 FatalError);
}

TEST(FlepSystem, RunForBoundsInfiniteWorkloads)
{
    FlepSystem::Options opts = fastOptions();
    opts.policy = FlepSystem::Policy::Ffs;
    FlepSystem sys(opts);
    auto &a = sys.addProcess(
        {sys.kernel("MM", InputClass::Trivial, 2, 1000, -1)});
    auto &b = sys.addProcess(
        {sys.kernel("VA", InputClass::Trivial, 1, 1000, -1)});
    const Tick end = sys.runFor(20 * ticksPerMs);
    EXPECT_GE(end, 20 * ticksPerMs);
    EXPECT_GT(a.results().size(), 10u);
    EXPECT_GT(b.results().size(), 5u);
}

TEST(FlepSystem, PredictNsUsesTrainedModels)
{
    FlepSystem sys(fastOptions());
    const auto &w = sys.suite().byName("NN");
    const Tick large =
        sys.runtime().predictNs("NN", w.input(InputClass::Large));
    const Tick small =
        sys.runtime().predictNs("NN", w.input(InputClass::Small));
    EXPECT_GT(large, small);
}

} // namespace
} // namespace flep
