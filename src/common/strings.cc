#include "common/strings.hh"

#include <cstdarg>
#include <cstdio>

namespace flep
{

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

std::string
formatDouble(double v, int decimals)
{
    return format("%.*f", decimals, v);
}

std::string
replaceAll(std::string s, const std::string &from, const std::string &to)
{
    if (from.empty())
        return s;
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

} // namespace flep
