#include "compiler/resource_scan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flep::minicuda
{

int
scalarSizeBytes(BaseType base)
{
    switch (base) {
      case BaseType::Void:
        return 0;
      case BaseType::Bool:
        return 1;
      case BaseType::Int:
      case BaseType::Unsigned:
      case BaseType::Float:
        return 4;
    }
    return 4;
}

namespace
{

int
exprDepth(const Expr &e)
{
    int depth = 0;
    auto dive = [&](const ExprPtr &child) {
        if (child)
            depth = std::max(depth, exprDepth(*child));
    };
    dive(e.lhs);
    dive(e.rhs);
    dive(e.base);
    dive(e.index);
    for (const auto &arg : e.args)
        depth = std::max(depth, exprDepth(*arg));
    return depth + 1;
}

void
scanStmt(const Stmt &stmt, KernelResources &res)
{
    auto scanExpr = [&](const ExprPtr &e) {
        if (e)
            res.maxExprDepth = std::max(res.maxExprDepth,
                                        exprDepth(*e));
    };

    switch (stmt.kind) {
      case StmtKind::Decl: {
        if (stmt.isShared) {
            ++res.sharedDecls;
            long long elems = 1;
            for (long long dim : stmt.arrayDims)
                elems *= dim;
            res.smemBytesPerCta += static_cast<int>(
                elems * scalarSizeBytes(stmt.type.base));
        } else if (!stmt.type.isPointer) {
            ++res.localDecls;
        }
        scanExpr(stmt.init);
        break;
      }
      case StmtKind::Compound:
        for (const auto &s : stmt.stmts)
            scanStmt(*s, res);
        break;
      case StmtKind::ExprStmt:
      case StmtKind::Return:
        scanExpr(stmt.expr);
        break;
      case StmtKind::If:
        scanExpr(stmt.cond);
        scanStmt(*stmt.thenStmt, res);
        if (stmt.elseStmt)
            scanStmt(*stmt.elseStmt, res);
        break;
      case StmtKind::For:
        if (stmt.forInit)
            scanStmt(*stmt.forInit, res);
        scanExpr(stmt.cond);
        scanExpr(stmt.step);
        scanStmt(*stmt.body, res);
        break;
      case StmtKind::While:
        scanExpr(stmt.cond);
        scanStmt(*stmt.body, res);
        break;
      case StmtKind::Break:
      case StmtKind::Continue:
        break;
      case StmtKind::Launch:
        FLEP_PANIC("kernel launch inside a __global__ function");
    }
}

} // namespace

KernelResources
scanKernelResources(const Function &kernel)
{
    FLEP_ASSERT(kernel.kind == FuncKind::Global,
                "resource scan expects a __global__ kernel");
    KernelResources res;
    scanStmt(*kernel.body, res);

    // Register estimate: ABI/base cost, one per pointer param (64-bit
    // addresses take two 32-bit registers), one per scalar local, and
    // temporaries proportional to the deepest expression.
    int regs = 10;
    for (const auto &p : kernel.params)
        regs += p.type.isPointer ? 2 : 1;
    regs += res.localDecls;
    regs += std::max(0, res.maxExprDepth - 2);
    res.regsPerThread = std::clamp(regs, 10, 255);
    return res;
}

} // namespace flep::minicuda
