/**
 * @file
 * Ablation: device size. The paper argues spatial preemption matters
 * because "a high-end GPU typically has more than 10 SMs" while small
 * waiting kernels need only a few (§2.2). Sweeping the SM count shows
 * the argument quantitatively: the more SMs the device has, the
 * smaller the fraction a trivial kernel needs, and the larger the
 * advantage of yielding only that fraction.
 */

#include <algorithm>
#include <cstdio>

#include "common/bench_util.hh"
#include "common/stats.hh"
#include "runtime/preemption.hh"

using namespace flep;
using namespace flep::benchutil;

namespace
{

double
overheadPct(BenchEnv &env, const GpuConfig &gpu, bool spatial)
{
    // NN victim (large) + MD guest (trivial), as in Figure 15.
    SampleStats ovh;
    for (int r = 0; r < env.reps(); ++r) {
        CoRunConfig cfg;
        cfg.gpu = gpu;
        cfg.seed = 100 + static_cast<std::uint64_t>(r);
        cfg.kernels = {{"NN", InputClass::Large, 0, 0, 1},
                       {"MD", InputClass::Trivial, 5, 500000, 1}};
        cfg.scheduler = SchedulerKind::Mps;
        const auto t_org = runCoRun(env.suite(), env.artifacts(), cfg)
                               .makespanNs;
        cfg.scheduler = SchedulerKind::FlepHpf;
        cfg.hpf.enableSpatial = spatial;
        const auto t_flep = runCoRun(env.suite(), env.artifacts(), cfg)
                                .makespanNs;
        ovh.add((static_cast<double>(t_flep) -
                 static_cast<double>(t_org)) /
                static_cast<double>(t_org) * 100.0);
    }
    return ovh.mean();
}

} // namespace

int
main()
{
    BenchEnv env;
    printHeader("Ablation D",
                "spatial preemption benefit vs device size");

    Table table("NN(large) preempted by MD(trivial): overhead by SM "
                "count");
    table.setHeader({"SMs", "guest needs", "temporal ovh (%)",
                     "spatial ovh (%)", "reduction (%)"});

    for (int sms : {8, 15, 30, 56}) {
        GpuConfig gpu = sms == 56 ? GpuConfig::pascalP100()
                                  : GpuConfig::keplerK40();
        gpu.numSms = sms;
        if (sms == 56) {
            // Keep the timing model identical to the K40 so only the
            // SM count varies in this sweep.
            gpu.pinnedReadNs = GpuConfig::keplerK40().pinnedReadNs;
            gpu.pinnedWriteVisibleNs =
                GpuConfig::keplerK40().pinnedWriteVisibleNs;
            gpu.maxCtasPerSm = GpuConfig::keplerK40().maxCtasPerSm;
            gpu.smemPerSm = GpuConfig::keplerK40().smemPerSm;
        }
        const int needed = smsNeededForInput(
            gpu,
            env.suite().byName("MD").input(InputClass::Trivial));
        const double temporal = overheadPct(env, gpu, false);
        const double spatial = overheadPct(env, gpu, true);
        const double reduction =
            temporal > 0.0 ? (temporal - spatial) / temporal * 100.0
                           : 0.0;
        table.row()
            .cell(static_cast<long long>(sms))
            .cell(static_cast<long long>(needed))
            .cell(temporal, 2)
            .cell(spatial, 2)
            .cell(std::max(reduction, 0.0), 0);
    }
    table.print();
    printPaperNote("the bigger the device relative to the waiting "
                   "kernel, the more SM-time temporal preemption "
                   "wastes and the bigger spatial preemption's edge "
                   "(paper §2.2)");
    return 0;
}
