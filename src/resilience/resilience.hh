/**
 * @file
 * Resilience configuration for the cluster layer: fault injection,
 * checkpoint-requeue retry policy, and load-driven migration.
 *
 * See docs/resilience.md for the full model. The contract that shapes
 * everything here: when `ResilienceConfig::active()` is false the
 * cluster installs no hooks and schedules no events, and when it is
 * true but no fault fires and migration is off, capture is purely
 * passive — so such runs stay bit-identical to runs without the
 * resilience layer (pinned by tests/resilience/).
 */

#ifndef FLEP_RESILIENCE_RESILIENCE_HH
#define FLEP_RESILIENCE_RESILIENCE_HH

#include <vector>

#include "common/types.hh"
#include "resilience/checkpoint.hh"
#include "resilience/fault_plan.hh"

namespace flep
{

/** What happens to a job evicted by a device fault. */
struct RetryPolicy
{
    /**
     * Restart budget per job. Each fault-eviction consumes one
     * restart; a job evicted more than this many times is marked a
     * permanent failure and never requeued (its SLO, if any, counts
     * as missed).
     */
    int maxRestarts = 3;

    /** First requeue delay; doubles per restart (simulated time). */
    Tick backoffBaseNs = 1 * 1000 * 1000;

    /** Ceiling on the exponential backoff. */
    Tick backoffCapNs = 64 * 1000 * 1000;
};

/** The periodic load rebalancer. */
struct MigrationConfig
{
    bool enabled = false;

    /** Rebalance cadence while jobs remain in flight. */
    Tick intervalNs = 2 * 1000 * 1000;

    /**
     * Hysteresis floor: migrate only when the predicted-backlog gap
     * between the most and least loaded devices exceeds this. A
     * candidate must also strictly reduce the gap, and the target
     * must have a free slot, so a migration can never immediately
     * justify the reverse move.
     */
    Tick minImbalanceNs = 2 * 1000 * 1000;

    /** A job that just migrated may not migrate again this soon. */
    Tick cooldownNs = 8 * 1000 * 1000;
};

/** Everything the cluster's resilience layer is told to do. */
struct ResilienceConfig
{
    /**
     * Capture checkpoints even with no faults and no migration —
     * the knob the bit-identity regression pins: capture must be
     * observable only through the checkpoint store.
     */
    bool checkpoints = false;

    /** The fault plan (scripted or generateFaultPlan()). Non-empty
     *  implies checkpoint capture. */
    std::vector<FaultEvent> faults;

    RetryPolicy retry;

    MigrationConfig migration;

    /** True when the cluster should wire the resilience layer in. */
    bool
    active() const
    {
        return checkpoints || !faults.empty() || migration.enabled;
    }
};

} // namespace flep

#endif // FLEP_RESILIENCE_RESILIENCE_HH
