#include "cluster/cluster_metrics.hh"

#include "common/stats.hh"

namespace flep
{

ClusterMetrics
computeClusterMetrics(const ClusterResult &result)
{
    ClusterMetrics m;
    m.jobs = result.outcomes.size();
    m.deviceUtilization = result.deviceUtilization;
    m.preemptivePlacements = result.preemptivePlacements;
    for (long p : result.devicePreemptions)
        m.devicePreemptions += p;

    m.faultsInjected = result.faultsInjected;
    m.restarts = result.restarts;
    m.migrations = result.migrations;
    m.permanentFailures = result.permanentFailures;
    m.lostWorkNs = result.lostWorkNs;
    m.sparesActivated = result.sparesActivated;
    m.jobsAbsorbedBySpares = result.jobsAbsorbedBySpares;
    m.deviceFaultRatePerSec = result.deviceFaultRatePerSec;
    if (result.sparesActivated > 0) {
        m.meanSpareActivationLatencyUs =
            ticksToUs(result.spareActivationLatencyNs) /
            static_cast<double>(result.sparesActivated);
    }

    SampleStats queue_delay;
    SampleStats turnaround;
    SampleStats abs_pred_err;
    std::map<Priority, std::pair<std::size_t, std::size_t>> by_prio;
    std::map<InputClass, std::pair<std::size_t, std::size_t>> by_class;
    Tick exec_total = 0;
    for (const auto &out : result.outcomes) {
        exec_total += out.execNs;
        if (out.placed)
            queue_delay.add(ticksToUs(out.queueDelayNs()));
        if (out.completed) {
            ++m.completed;
            turnaround.add(ticksToUs(out.turnaroundNs()));
            if (out.execNs > 0) {
                const double err = out.predictionErrorPct();
                abs_pred_err.add(err < 0 ? -err : err);
            }
        }
        if (out.job.sloNs > 0) {
            ++m.sloJobs;
            auto &[slo_jobs, slo_met] = by_prio[out.job.priority];
            ++slo_jobs;
            auto &[cls_jobs, cls_met] = by_class[out.job.input];
            ++cls_jobs;
            // Unfinished (never placed, or cut off by the horizon)
            // SLO jobs count as misses: the user did not get their
            // answer in time.
            if (out.sloMet()) {
                ++m.sloMet;
                ++slo_met;
                ++cls_met;
            }
        }
    }
    m.sloAttainment = m.sloJobs == 0
        ? 1.0
        : static_cast<double>(m.sloMet) /
            static_cast<double>(m.sloJobs);
    // NaN guard: a breakdown entry with zero SLO jobs (cannot arise
    // from the loop above today, but sloAttainmentFor()'s 1.0
    // contract must hold even if callers build partial results by
    // hand) reports full attainment instead of 0/0.
    for (const auto &[prio, counts] : by_prio) {
        m.sloAttainmentByPriority[prio] = counts.first == 0
            ? 1.0
            : static_cast<double>(counts.second) /
                static_cast<double>(counts.first);
    }
    for (const auto &[cls, counts] : by_class) {
        m.sloAttainmentByInputClass[cls] = counts.first == 0
            ? 1.0
            : static_cast<double>(counts.second) /
                static_cast<double>(counts.first);
    }
    // Goodput: fraction of executed GPU time that contributed to
    // results (lost work was re-run after requeues).
    if (m.lostWorkNs > 0 && exec_total + m.lostWorkNs > 0) {
        m.goodputFraction =
            static_cast<double>(exec_total) /
            static_cast<double>(exec_total + m.lostWorkNs);
    }
    if (queue_delay.count() > 0) {
        m.p50QueueDelayUs = queue_delay.percentile(50);
        m.p99QueueDelayUs = queue_delay.percentile(99);
    }
    if (turnaround.count() > 0)
        m.meanTurnaroundUs = turnaround.mean();
    if (abs_pred_err.count() > 0)
        m.meanAbsPredictionErrorPct = abs_pred_err.mean();
    for (const DeviceMacroStats &ms : result.deviceMacroStats) {
        m.macroFastChunks += ms.fastChunks;
        m.macroSlowChunks += ms.slowChunks;
        m.macroWindows += ms.windows;
        m.macroInvalidations += ms.invalidations;
    }
    const std::uint64_t macro_total =
        m.macroFastChunks + m.macroSlowChunks;
    if (macro_total > 0) {
        m.macroHitRate = static_cast<double>(m.macroFastChunks) /
                         static_cast<double>(macro_total);
    }
    return m;
}

} // namespace flep
