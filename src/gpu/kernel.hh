/**
 * @file
 * Kernel launch descriptors and the task-cost model.
 *
 * A "task" is the unit of work one CTA performs in the *original*
 * kernel (paper §4.1). The original kernel launches one CTA per task;
 * a FLEP-transformed kernel launches only as many persistent CTAs as
 * the device can host and lets each CTA pull tasks from a global
 * counter.
 */

#ifndef FLEP_GPU_KERNEL_HH
#define FLEP_GPU_KERNEL_HH

#include <functional>
#include <string>

#include "common/random.hh"
#include "common/types.hh"
#include "gpu/occupancy.hh"

namespace flep
{

/** How the device executes a kernel's CTAs. */
enum class ExecMode
{
    /**
     * Untransformed kernel: one CTA per task, non-preemptable; the
     * hardware scheduler drains all CTAs before any younger kernel.
     */
    Original,

    /**
     * FLEP persistent-thread form (Figure 4 b/c): a fixed wave of
     * persistent CTAs that poll the preemption flag every L tasks.
     * Spatial yielding is encoded in the flag value, so a single mode
     * covers both temporal and spatial preemption.
     */
    Persistent,
};

/** Human-readable mode name. */
const char *execModeName(ExecMode mode);

/**
 * Stochastic per-task cost model. Task base costs are i.i.d. with the
 * given mean and coefficient of variation; the cost of a chunk of k
 * consecutive tasks is sampled as the sum of k such draws (normal
 * approximation for k > 1, exact lognormal draw for k == 1).
 */
class TaskCostModel
{
  public:
    TaskCostModel() = default;

    /**
     * @param mean_ns mean base cost of one task in ticks
     * @param cv coefficient of variation of a single task's cost
     */
    TaskCostModel(double mean_ns, double cv);

    /** Mean base cost of one task. */
    double meanNs() const { return meanNs_; }

    /** Coefficient of variation of one task. */
    double cv() const { return cv_; }

    /**
     * Sample the total base cost of k tasks.
     * @return ticks, always >= 1 for k >= 1.
     */
    Tick sampleChunk(long k, Rng &rng) const;

  private:
    double meanNs_ = 1000.0;
    double cv_ = 0.0;
};

/**
 * Everything the device needs to execute one kernel invocation.
 * Produced by the workload layer (optionally via the FLEP compiler's
 * transformation) and consumed by GpuDevice.
 */
struct KernelLaunchDesc
{
    /** Kernel name, used in logs and runtime records. */
    std::string name;

    /** Total number of tasks (original-form CTA count). */
    long totalTasks = 0;

    /** Per-CTA hardware resource demand. */
    CtaFootprint footprint;

    /** Per-task base cost distribution. */
    TaskCostModel cost;

    /** Contention sensitivity (see gpu/contention.hh). */
    double contentionBeta = 0.0;

    /** Execution form. */
    ExecMode mode = ExecMode::Original;

    /**
     * Amortizing factor L: tasks processed between preemption-flag
     * polls (Persistent mode only).
     */
    int amortizeL = 1;

    /** Owning host process, for accounting. */
    ProcessId process = 0;

    /**
     * Optional functional co-simulation hook: invoked once per task,
     * in claim order, when the chunk containing the task completes.
     * Lets a caller execute real per-task work (e.g. interpreting the
     * outlined mini-CUDA task function) under the simulated schedule,
     * including preemption and resume.
     */
    std::function<void(long)> onTask;
};

} // namespace flep

#endif // FLEP_GPU_KERNEL_HH
